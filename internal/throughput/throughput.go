// Package throughput computes the steady-state throughput of experiments
// under a port mapping, as defined by the linear program of the paper's
// Definitions 3 and 4.
//
// Three interchangeable engines are provided:
//
//   - LP: a direct realization of the linear program using the simplex
//     solver in internal/lp. This is the reference and the baseline the
//     paper benchmarks against (Gurobi in their setup, §5.4).
//   - BottleneckNaive: the paper's bottleneck simulation algorithm
//     (Equation 1), enumerating all subsets Q of the ports and evaluating
//     Σ{e(i) | Ports(i) ⊆ Q} / |Q| for each — Θ(2^|P|) as described in
//     §4.5.
//   - Bottleneck: the same algorithm with the per-subset mass scan
//     replaced by a subset-sum (zeta) transform, the analog of the
//     "aggressive performance optimizations" the paper applies.
//
// A fourth variant, BottleneckUnion, exploits that the optimum is always
// attained at a Q that is a union of µop port sets, enumerating subsets
// of the distinct µops instead of subsets of the ports. It is exact and
// asymptotically independent of the port count; we use it as an ablation
// of the paper's design choice.
//
// All engines agree exactly (up to floating-point association); this is
// property-tested against each other and against the LP.
package throughput

import (
	"fmt"
	"math"
	"math/bits"

	"pmevo/internal/lp"
	"pmevo/internal/portmap"
)

// maxTablePorts bounds the size of the subset-sum table (8 bytes per
// subset). 22 ports → 32 MiB, comfortably above the largest machines the
// paper considers (10 ports) and its Figure 8 sweep (20 ports).
const maxTablePorts = 22

// Bottleneck computes the throughput for the given µop masses using the
// bottleneck simulation algorithm with a subset-sum table over the ports
// that actually occur in the masses.
//
// Terms with zero mass are ignored. A term with a positive mass and an
// empty port set cannot execute anywhere; the result is +Inf.
// Bottleneck panics if more than 22 distinct ports occur; callers with
// wider machines should use LP or BottleneckUnion.
func Bottleneck(terms []portmap.MassTerm) float64 {
	var ev Evaluator
	return ev.Bottleneck(terms)
}

// Evaluator computes throughputs while reusing internal buffers. It is
// the engine of choice for hot loops such as fitness evaluation in the
// evolutionary algorithm. The zero value is ready for use. An Evaluator
// must not be used concurrently.
type Evaluator struct {
	sums  []float64
	flat  []portmap.MassTerm
	masks []maskMass
	midx  map[portmap.PortSet]int32 // reusable index for wide merges
}

type maskMass struct {
	ports portmap.PortSet
	mass  float64
}

// smallMergeCutoff bounds the term count up to which merging masses by
// port set uses a linear scan of the merged list. The §4.1 pair
// experiments flatten to a handful of terms, where the scan beats any
// map; beyond the cutoff (long experiments, many-µop mappings) the scan
// is O(d²) in the distinct port sets and a reusable index map wins.
const smallMergeCutoff = 16

// mergeTerms merges the non-zero masses of terms by port set into
// ev.masks — preserving first-occurrence order, so downstream float
// summation is independent of the merge strategy — and returns the
// union of occurring ports. ok=false signals a positive mass on an
// empty port set (the experiment cannot execute: throughput +Inf).
func (ev *Evaluator) mergeTerms(terms []portmap.MassTerm) (used portmap.PortSet, ok bool) {
	if len(terms) > smallMergeCutoff {
		return ev.mergeTermsIndexed(terms)
	}
	return ev.mergeTermsLinear(terms)
}

// mergeTermsLinear is the small-input path of mergeTerms: a linear
// scan of the merged list per term.
func (ev *Evaluator) mergeTermsLinear(terms []portmap.MassTerm) (used portmap.PortSet, ok bool) {
	ev.masks = ev.masks[:0]
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return 0, false
		}
		used |= t.Ports
		found := false
		for i := range ev.masks {
			if ev.masks[i].ports == t.Ports {
				ev.masks[i].mass += t.Mass
				found = true
				break
			}
		}
		if !found {
			ev.masks = append(ev.masks, maskMass{ports: t.Ports, mass: t.Mass})
		}
	}
	return used, true
}

// mergeTermsIndexed is the wide-input path of mergeTerms: an index map
// from port set to position in ev.masks replaces the linear scan.
func (ev *Evaluator) mergeTermsIndexed(terms []portmap.MassTerm) (used portmap.PortSet, ok bool) {
	ev.masks = ev.masks[:0]
	if ev.midx == nil {
		ev.midx = make(map[portmap.PortSet]int32, len(terms))
	} else {
		clear(ev.midx)
	}
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return 0, false
		}
		used |= t.Ports
		if i, found := ev.midx[t.Ports]; found {
			ev.masks[i].mass += t.Mass
		} else {
			ev.midx[t.Ports] = int32(len(ev.masks))
			ev.masks = append(ev.masks, maskMass{ports: t.Ports, mass: t.Mass})
		}
	}
	return used, true
}

// ThroughputOf flattens experiment e under mapping m (reducing the
// three-level model to the two-level model, §3.2) and computes its
// throughput with the bottleneck algorithm.
func (ev *Evaluator) ThroughputOf(m *portmap.Mapping, e portmap.Experiment) float64 {
	ev.flat = m.FlattenInto(ev.flat, e)
	return ev.Bottleneck(ev.flat)
}

// Part is one instruction's contribution to an experiment in
// pre-flattened form: the instruction's unit mass terms (its µop
// decomposition with Mass = µop count) and the experiment's multiplicity
// for the instruction. Callers that evaluate many experiments over the
// same mapping flatten each instruction once and reuse the terms across
// all experiments containing it (the engine's fitness hot loop does
// this).
type Part struct {
	Terms []portmap.MassTerm
	Scale float64
}

// BottleneckParts computes the throughput of the experiment described by
// parts, merging the scaled per-instruction terms directly into the
// evaluator's buffers. It is bit-identical to ThroughputOf on the
// equivalent mapping/experiment pair: the merge consumes (port set, mass)
// pairs in the same order with the same floating-point operations, and
// the engine dispatch below is unchanged.
func (ev *Evaluator) BottleneckParts(parts []Part) float64 {
	used, ok := ev.mergeParts(parts)
	if !ok {
		return math.Inf(1)
	}
	if used.IsEmpty() {
		return 0
	}
	k := used.Count()
	d := len(ev.masks)
	if d <= 12 && d < k {
		return ev.bottleneckUnion()
	}
	return ev.bottleneckTable(used, k)
}

// mergeParts is mergeTerms over scaled per-instruction term lists. Like
// mergeTerms it preserves first-occurrence order and picks the linear
// scan or the indexed map by input size; both strategies produce
// identical masks, so the choice never affects results.
func (ev *Evaluator) mergeParts(parts []Part) (used portmap.PortSet, ok bool) {
	total := 0
	for i := range parts {
		if parts[i].Scale != 0 {
			total += len(parts[i].Terms)
		}
	}
	if total > smallMergeCutoff {
		return ev.mergePartsIndexed(parts)
	}
	ev.masks = ev.masks[:0]
	for i := range parts {
		scale := parts[i].Scale
		if scale == 0 {
			continue
		}
		for _, t := range parts[i].Terms {
			mass := scale * t.Mass
			if mass == 0 {
				continue
			}
			if t.Ports.IsEmpty() {
				return 0, false
			}
			used |= t.Ports
			found := false
			for j := range ev.masks {
				if ev.masks[j].ports == t.Ports {
					ev.masks[j].mass += mass
					found = true
					break
				}
			}
			if !found {
				ev.masks = append(ev.masks, maskMass{ports: t.Ports, mass: mass})
			}
		}
	}
	return used, true
}

// mergePartsIndexed is the wide-input path of mergeParts.
func (ev *Evaluator) mergePartsIndexed(parts []Part) (used portmap.PortSet, ok bool) {
	ev.masks = ev.masks[:0]
	if ev.midx == nil {
		ev.midx = make(map[portmap.PortSet]int32)
	} else {
		clear(ev.midx)
	}
	for i := range parts {
		scale := parts[i].Scale
		if scale == 0 {
			continue
		}
		for _, t := range parts[i].Terms {
			mass := scale * t.Mass
			if mass == 0 {
				continue
			}
			if t.Ports.IsEmpty() {
				return 0, false
			}
			used |= t.Ports
			if j, found := ev.midx[t.Ports]; found {
				ev.masks[j].mass += mass
			} else {
				ev.midx[t.Ports] = int32(len(ev.masks))
				ev.masks = append(ev.masks, maskMass{ports: t.Ports, mass: mass})
			}
		}
	}
	return used, true
}

// Bottleneck computes the throughput of the given µop masses; see the
// package-level Bottleneck. Internally it picks between two exact
// strategies: for experiments with few distinct µops (the common case
// for the §4.1 pair experiments) it enumerates subsets of the µops,
// whose unions cover all candidate bottleneck sets Q; otherwise it runs
// the subset-sum table over the occurring ports.
func (ev *Evaluator) Bottleneck(terms []portmap.MassTerm) float64 {
	// Merge masses by port set and collect the union of occurring ports.
	used, ok := ev.mergeTerms(terms)
	if !ok {
		return math.Inf(1)
	}
	if used.IsEmpty() {
		return 0
	}
	k := used.Count()
	d := len(ev.masks)
	if d <= 12 && d < k {
		// Union enumeration: O(2^d · d), independent of the port count.
		return ev.bottleneckUnion()
	}
	return ev.bottleneckTable(used, k)
}

// BottleneckTable computes the throughput with the subset-sum table
// over the occurring ports, without the union-enumeration dispatch of
// Bottleneck. This is the paper's Θ(2^|P|) algorithm (§4.5) with the
// per-subset scan replaced by a zeta transform; the Figure 8
// reproduction measures this variant so the exponential port-count
// behaviour the paper reports remains visible.
func (ev *Evaluator) BottleneckTable(terms []portmap.MassTerm) float64 {
	used, ok := ev.mergeTerms(terms)
	if !ok {
		return math.Inf(1)
	}
	if used.IsEmpty() {
		return 0
	}
	return ev.bottleneckTable(used, used.Count())
}

// zetaTransform applies the subset-sum (zeta) transform in place:
// afterwards sums[Q] = Σ{sums_before[u] | u ⊆ Q} (len(sums) must be
// 1<<k). Each pass only writes entries whose b-th bit is set and only
// reads entries with it clear, so the additions are independent and run
// over the contiguous upper half of each 2·bit block branch-free —
// bit-identical to the naive q-loop, at about half the iterations. Both
// bottleneckTable and BuildUnitTable go through this one implementation;
// the caching layer's bit-identical invariant depends on that.
func zetaTransform(sums []float64, k int) {
	size := 1 << uint(k)
	for b := 0; b < k; b++ {
		bit := 1 << uint(b)
		for base := bit; base < size; base += bit << 1 {
			dst := sums[base : base+bit]
			src := sums[base-bit : base : base]
			for i := range dst {
				dst[i] += src[i]
			}
		}
	}
}

// bottleneckTable runs the subset-sum table over the ports in `used`,
// consuming the merged masses in ev.masks.
func (ev *Evaluator) bottleneckTable(used portmap.PortSet, k int) float64 {
	if k > maxTablePorts {
		panic(fmt.Sprintf("throughput: %d distinct ports exceed the %d-port bottleneck table limit", k, maxTablePorts))
	}

	// compact[j] = original port index of dense bit j.
	var portToDense [portmap.MaxPorts]uint8
	for j, p := range used.Ports() {
		portToDense[p] = uint8(j)
	}

	size := 1 << uint(k)
	if cap(ev.sums) < size {
		ev.sums = make([]float64, size)
	}
	sums := ev.sums[:size]
	for i := range sums {
		sums[i] = 0
	}
	for _, t := range ev.masks {
		var dense uint32
		for v := uint64(t.ports); v != 0; v &= v - 1 {
			dense |= 1 << portToDense[bits.TrailingZeros64(v)]
		}
		sums[dense] += t.mass
	}

	zetaTransform(sums, k)

	// Max of sums[Q]/|Q|. Division by a positive constant is monotone, so
	// the per-|Q| maxima can be taken on the raw sums and divided once per
	// cardinality class — identical result, k divisions instead of 2^k.
	var maxSum [maxTablePorts + 1]float64
	for q := 1; q < size; q++ {
		if c := bits.OnesCount(uint(q)); sums[q] > maxSum[c] {
			maxSum[c] = sums[q]
		}
	}
	return divideMaxima(&maxSum, k)
}

// bottleneckUnion enumerates subsets of the merged µop masks in
// ev.masks: the optimum of Equation 1 is always attained at a Q that is
// a union of µop port sets (shrinking Q to the union of the port sets it
// covers keeps the mass and cannot grow |Q|).
func (ev *Evaluator) bottleneckUnion() float64 {
	d := len(ev.masks)
	best := 0.0
	for s := 1; s < 1<<uint(d); s++ {
		var q portmap.PortSet
		for v := uint(s); v != 0; v &= v - 1 {
			q |= ev.masks[bits.TrailingZeros(v)].ports
		}
		mass := 0.0
		for i := range ev.masks {
			if ev.masks[i].ports.SubsetOf(q) {
				mass += ev.masks[i].mass
			}
		}
		if v := mass / float64(q.Count()); v > best {
			best = v
		}
	}
	return best
}

// BottleneckNaive is the unoptimized form of the bottleneck simulation
// algorithm exactly as presented in §4.5: for every subset Q of the used
// ports, scan all µop masses and accumulate those whose port set is
// contained in Q. It is exponentially slower than Bottleneck for many
// distinct masses and exists as the reference implementation and as an
// ablation baseline.
func BottleneckNaive(terms []portmap.MassTerm) float64 {
	var used portmap.PortSet
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return math.Inf(1)
		}
		used |= t.Ports
	}
	if used.IsEmpty() {
		return 0
	}
	k := used.Count()
	if k > maxTablePorts {
		panic(fmt.Sprintf("throughput: %d distinct ports exceed the %d-port limit", k, maxTablePorts))
	}
	ports := used.Ports()

	best := 0.0
	for q := 1; q < 1<<uint(k); q++ {
		var subset portmap.PortSet
		for j, p := range ports {
			if q&(1<<uint(j)) != 0 {
				subset = subset.With(p)
			}
		}
		mass := 0.0
		for _, t := range terms {
			if t.Ports.SubsetOf(subset) {
				mass += t.Mass
			}
		}
		if v := mass / float64(subset.Count()); v > best {
			best = v
		}
	}
	return best
}

// BottleneckUnion computes the throughput by enumerating subsets of the
// distinct µop port sets instead of subsets of the ports. The optimum of
// Equation 1 is always attained at a Q that is a union of µop port sets:
// shrinking any Q to the union of the port sets it covers keeps the
// covered mass while not increasing |Q|. The cost is Θ(2^d) in the number
// d of distinct µops, independent of the port count.
func BottleneckUnion(terms []portmap.MassTerm) float64 {
	// Merge terms by port set first.
	distinct := make([]portmap.MassTerm, 0, len(terms))
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return math.Inf(1)
		}
		found := false
		for i := range distinct {
			if distinct[i].Ports == t.Ports {
				distinct[i].Mass += t.Mass
				found = true
				break
			}
		}
		if !found {
			distinct = append(distinct, t)
		}
	}
	d := len(distinct)
	if d == 0 {
		return 0
	}
	if d > 24 {
		panic(fmt.Sprintf("throughput: %d distinct µops exceed the union-enumeration limit", d))
	}
	best := 0.0
	for s := 1; s < 1<<uint(d); s++ {
		var q portmap.PortSet
		for j := 0; j < d; j++ {
			if s&(1<<uint(j)) != 0 {
				q |= distinct[j].Ports
			}
		}
		mass := 0.0
		for _, t := range distinct {
			if t.Ports.SubsetOf(q) {
				mass += t.Mass
			}
		}
		if v := mass / float64(q.Count()); v > best {
			best = v
		}
	}
	return best
}

// LP computes the throughput by building and solving the linear program
// of Definition 3 over the given µop masses: minimize t subject to mass
// conservation per µop and load ≤ t per port. Model construction is part
// of this function (and of its cost), mirroring the paper's measurement
// methodology for the Gurobi baseline.
func LP(terms []portmap.MassTerm, numPorts int) (float64, error) {
	// Merge terms by port set so each µop yields one mass constraint.
	type uop struct {
		ports portmap.PortSet
		mass  float64
	}
	var uops []uop
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return math.Inf(1), nil
		}
		found := false
		for i := range uops {
			if uops[i].ports == t.Ports {
				uops[i].mass += t.Mass
				found = true
				break
			}
		}
		if !found {
			uops = append(uops, uop{t.Ports, t.Mass})
		}
	}
	if len(uops) == 0 {
		return 0, nil
	}

	p := lp.NewProblem(lp.Minimize)
	tVar := p.AddVariable(1)

	// xByPort[k] collects the x_{u,k} variables of all µops that may use
	// port k, for the port-capacity constraints.
	xByPort := make([][]lp.Var, numPorts)
	for _, u := range uops {
		var massTerms []lp.Term
		for _, k := range u.ports.Ports() {
			if k >= numPorts {
				return 0, fmt.Errorf("throughput: port %d out of range (%d ports)", k, numPorts)
			}
			x := p.AddVariable(0)
			massTerms = append(massTerms, lp.Term{Var: x, Coeff: 1})
			xByPort[k] = append(xByPort[k], x)
		}
		if err := p.AddConstraint(massTerms, lp.EQ, u.mass); err != nil {
			return 0, err
		}
	}
	for k := 0; k < numPorts; k++ {
		if len(xByPort[k]) == 0 {
			continue
		}
		terms := make([]lp.Term, 0, len(xByPort[k])+1)
		for _, x := range xByPort[k] {
			terms = append(terms, lp.Term{Var: x, Coeff: 1})
		}
		terms = append(terms, lp.Term{Var: tVar, Coeff: -1})
		if err := p.AddConstraint(terms, lp.LE, 0); err != nil {
			return 0, err
		}
	}

	sol := p.Solve()
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("throughput: LP status %v", sol.Status)
	}
	return sol.Objective, nil
}

// OfExperiment computes the throughput t*_m(e) of experiment e under the
// three-level mapping m using the bottleneck algorithm.
func OfExperiment(m *portmap.Mapping, e portmap.Experiment) float64 {
	return Bottleneck(m.Flatten(e))
}

// OfExperimentLP computes the throughput t*_m(e) via the linear program.
func OfExperimentLP(m *portmap.Mapping, e portmap.Experiment) (float64, error) {
	return LP(m.Flatten(e), m.NumPorts)
}
