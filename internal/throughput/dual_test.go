package throughput

import (
	"math"
	"math/rand"
	"testing"

	"pmevo/internal/portmap"
)

// TestStrongDuality is the machine-checked Appendix A argument: the
// primal throughput LP, its dual, and the bottleneck simulation
// algorithm must all produce the same value.
func TestStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		numPorts := 1 + rng.Intn(8)
		terms := randomTerms(rng, numPorts, 1+rng.Intn(8))
		primal, err := LP(terms, numPorts)
		if err != nil {
			t.Fatalf("trial %d: primal: %v", trial, err)
		}
		dual, err := DualLP(terms, numPorts)
		if err != nil {
			t.Fatalf("trial %d: dual: %v", trial, err)
		}
		bn := Bottleneck(terms)
		if math.Abs(primal-dual) > 1e-6 {
			t.Fatalf("trial %d: duality gap: primal %g, dual %g", trial, primal, dual)
		}
		if math.Abs(primal-bn) > 1e-6 {
			t.Fatalf("trial %d: bottleneck %g != primal %g", trial, bn, primal)
		}
	}
}

func TestDualLPEdgeCases(t *testing.T) {
	v, err := DualLP(nil, 3)
	if err != nil || v != 0 {
		t.Errorf("DualLP(empty) = %g, %v", v, err)
	}
	v, err = DualLP([]portmap.MassTerm{{Ports: 0, Mass: 1}}, 3)
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("DualLP(unexecutable) = %g, %v", v, err)
	}
	if _, err := DualLP([]portmap.MassTerm{{Ports: portmap.MakePortSet(9), Mass: 1}}, 3); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestBottleneckWitnessPaperExample(t *testing.T) {
	// Example 2: for e = {add→2, mul→1, store→1} under the Figure 2
	// mapping, Q* = {P1, P2} (indices 0, 1 here).
	m := twoLevelPaperMapping()
	e := portmap.Experiment{{Inst: 1, Count: 2}, {Inst: 0, Count: 1}, {Inst: 3, Count: 1}}
	q, tp := BottleneckWitness(m.Flatten(e))
	if math.Abs(tp-1.5) > 1e-9 {
		t.Errorf("witness throughput = %g, want 1.5", tp)
	}
	if q != portmap.MakePortSet(0, 1) {
		t.Errorf("Q* = %s, want {P0,P1}", q)
	}
}

func TestBottleneckWitnessProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		numPorts := 2 + rng.Intn(7)
		terms := randomTerms(rng, numPorts, 1+rng.Intn(6))
		q, tp := BottleneckWitness(terms)
		if q.IsEmpty() {
			t.Fatalf("trial %d: empty witness for non-empty experiment", trial)
		}
		// The witness value must match the bottleneck algorithm.
		if bn := Bottleneck(terms); math.Abs(tp-bn) > 1e-9 {
			t.Fatalf("trial %d: witness %g != bottleneck %g", trial, tp, bn)
		}
		// The witness must attain its own ratio: mass(Q*)/|Q*| = tp.
		mass := 0.0
		for _, mt := range terms {
			if mt.Ports.SubsetOf(q) {
				mass += mt.Mass
			}
		}
		if math.Abs(mass/float64(q.Count())-tp) > 1e-9 {
			t.Fatalf("trial %d: witness does not attain its ratio", trial)
		}
	}
}

func TestBottleneckWitnessEmpty(t *testing.T) {
	q, tp := BottleneckWitness(nil)
	if !q.IsEmpty() || tp != 0 {
		t.Errorf("witness of empty = %s, %g", q, tp)
	}
	q, tp = BottleneckWitness([]portmap.MassTerm{{Ports: 0, Mass: 2}})
	if !math.IsInf(tp, 1) {
		t.Errorf("witness of unexecutable = %s, %g", q, tp)
	}
}
