package throughput

import (
	"fmt"
	"math"
	"math/bits"

	"pmevo/internal/portmap"
)

// Per-instruction subset-sum tables.
//
// The subset-sum (zeta) transform at the heart of the bottleneck
// algorithm is linear in the µop masses, and an experiment's masses are
// a non-negative integer combination of its instructions' unit masses:
//
//	sums_e[Q] = Σ_i e(i) · T_i[Q],  T_i[Q] = Σ{n | (i,n,u) ∈ N, u ⊆ Q}
//
// so a caller evaluating many experiments over one mapping can zeta-
// transform each instruction once and reduce every experiment to a
// scaled sum of tables plus the max-ratio scan — no per-experiment
// flatten, merge, or transform. This is the engine fitness service's
// fast path: §4.1 experiments touch 1–2 instructions each, while each
// instruction occurs in O(#instructions) experiments.
//
// Bit-exactness: experiment counts and µop counts are integers, so every
// deposit, zeta addition, table scaling, and table sum is exact integer
// arithmetic in float64 (far below 2^53). Any association of these
// operations — per-experiment transform or per-instruction tables —
// yields identical bits, and the final max of sums[Q]/|Q| is a maximum
// of identical division results. The equivalence with ThroughputOf is
// property-tested. Callers with non-integral masses must use the
// per-experiment entry points instead.

// TablePart is one instruction's contribution to an experiment in
// subset-sum-table form: the instruction's unit table and the
// experiment's multiplicity for it.
type TablePart struct {
	Table []float64
	Scale float64
	// Used is the union of the instruction's µop port sets; the
	// max-ratio scan only needs subsets of the experiment's combined
	// union (every other Q is a dominated duplicate).
	Used portmap.PortSet
	// Inf marks an instruction with a µop on an empty port set: it can
	// never execute, so any experiment containing it has throughput +Inf.
	Inf bool
}

// BuildUnitTable fills dst (length 1<<k) with the subset-sum table of
// the decomposition's unit masses over ports 0..k-1. It returns the
// union of the occurring port sets and whether the decomposition
// contains an executable-nowhere µop (see TablePart fields). Every
// µop's port set must lie within 0..k-1.
func BuildUnitTable(dst []float64, uops []portmap.UopCount, k int) (used portmap.PortSet, inf bool) {
	if k > maxTablePorts {
		panic(fmt.Sprintf("throughput: %d ports exceed the %d-port bottleneck table limit", k, maxTablePorts))
	}
	size := 1 << uint(k)
	dst = dst[:size]
	clear(dst)
	for _, uc := range uops {
		if uc.Ports.IsEmpty() {
			if uc.Count != 0 {
				inf = true
			}
			continue
		}
		used |= uc.Ports
		dst[uc.Ports] += float64(uc.Count)
	}
	zetaTransform(dst, k)
	return used, inf
}

// BottleneckTables computes the throughput of the experiment described
// by parts — each a pre-transformed unit table with a multiplicity —
// over ports 0..k-1. Tables must have been built with BuildUnitTable at
// the same k. With integral unit masses and scales the result is
// bit-identical to ThroughputOf on the equivalent mapping/experiment
// pair.
func (ev *Evaluator) BottleneckTables(parts []TablePart, k int) float64 {
	size := 1 << uint(k)
	var a, b *TablePart
	live := 0
	for i := range parts {
		p := &parts[i]
		if p.Scale == 0 {
			continue
		}
		if p.Inf {
			return math.Inf(1)
		}
		switch live {
		case 0:
			a = p
		case 1:
			b = p
		}
		live++
	}
	switch live {
	case 0:
		return 0
	case 1:
		return maxRatioScaled1(a.Table[:size], a.Scale, a.Used)
	case 2:
		return maxRatioScaled2(a.Table[:size], b.Table[:size], a.Scale, b.Scale, a.Used|b.Used)
	}
	if cap(ev.sums) < size {
		ev.sums = make([]float64, size)
	}
	sums := ev.sums[:size]
	clear(sums)
	used := portmap.PortSet(0)
	for i := range parts {
		p := &parts[i]
		if p.Scale == 0 {
			continue
		}
		used |= p.Used
		t := p.Table[:size]
		for q := range sums {
			sums[q] += p.Scale * t[q]
		}
	}
	return maxRatioScaled1(sums, 1, used)
}

// maxRatioScaled1 returns max over non-empty Q ⊆ used of s·t[Q]/|Q|.
// Restricting Q to the used-port union is exact: for any other Q,
// t[Q] = t[Q∩used] with |Q| larger, a dominated duplicate. Divisions are
// hoisted per cardinality class as in bottleneckTable. When the union
// covers the whole table, a linear scan replaces the subset-enumeration
// chain (whose q → (q-1)&u recurrence is a serial dependency).
func maxRatioScaled1(t []float64, s float64, used portmap.PortSet) float64 {
	var maxSum [maxTablePorts + 1]float64
	u := uint64(used)
	if int(u) == len(t)-1 {
		for q := 1; q < len(t); q++ {
			if v := s * t[q]; v > maxSum[bits.OnesCount(uint(q))] {
				maxSum[bits.OnesCount(uint(q))] = v
			}
		}
	} else {
		for q := u; q != 0; q = (q - 1) & u {
			if v := s * t[q]; v > maxSum[bits.OnesCount64(q)] {
				maxSum[bits.OnesCount64(q)] = v
			}
		}
	}
	return divideMaxima(&maxSum, used.Count())
}

// maxRatioScaled2 is the fused two-instruction case (the §4.1 pair
// experiments): max over non-empty Q ⊆ used of (sa·a[Q] + sb·b[Q])/|Q|.
func maxRatioScaled2(a, b []float64, sa, sb float64, used portmap.PortSet) float64 {
	var maxSum [maxTablePorts + 1]float64
	u := uint64(used)
	if int(u) == len(a)-1 {
		b = b[:len(a)]
		for q := 1; q < len(a); q++ {
			if v := sa*a[q] + sb*b[q]; v > maxSum[bits.OnesCount(uint(q))] {
				maxSum[bits.OnesCount(uint(q))] = v
			}
		}
	} else {
		for q := u; q != 0; q = (q - 1) & u {
			if v := sa*a[q] + sb*b[q]; v > maxSum[bits.OnesCount64(q)] {
				maxSum[bits.OnesCount64(q)] = v
			}
		}
	}
	return divideMaxima(&maxSum, used.Count())
}

func divideMaxima(maxSum *[maxTablePorts + 1]float64, k int) float64 {
	best := 0.0
	for c := 1; c <= k; c++ {
		if maxSum[c] > 0 {
			if v := maxSum[c] / float64(c); v > best {
				best = v
			}
		}
	}
	return best
}
