package throughput

import (
	"fmt"
	"math"
	"strings"

	"pmevo/internal/lp"
	"pmevo/internal/portmap"
)

// Analysis describes an optimal port allocation for an experiment: the
// throughput, the per-port load (mass executed on each port per
// iteration), and the set of bottleneck ports (the Q* of §4.5) whose load
// equals the throughput.
type Analysis struct {
	Throughput float64
	PortLoad   []float64
	Bottleneck portmap.PortSet
}

// Analyze computes an optimal port allocation for experiment e under
// mapping m by solving the throughput LP and reading off the x_{u,k}
// variables. This is the port-pressure view that tools like llvm-mca
// present to users.
func Analyze(m *portmap.Mapping, e portmap.Experiment) (*Analysis, error) {
	terms := m.Flatten(e)
	numPorts := m.NumPorts

	// Merge terms by port set.
	type uop struct {
		ports portmap.PortSet
		mass  float64
	}
	var uops []uop
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return nil, fmt.Errorf("throughput: experiment contains a µop with no ports")
		}
		found := false
		for i := range uops {
			if uops[i].ports == t.Ports {
				uops[i].mass += t.Mass
				found = true
				break
			}
		}
		if !found {
			uops = append(uops, uop{t.Ports, t.Mass})
		}
	}
	if len(uops) == 0 {
		return &Analysis{PortLoad: make([]float64, numPorts)}, nil
	}

	p := lp.NewProblem(lp.Minimize)
	tVar := p.AddVariable(1)
	type xref struct {
		v    lp.Var
		port int
	}
	var xs []xref
	xByPort := make([][]lp.Var, numPorts)
	for _, u := range uops {
		var massTerms []lp.Term
		for _, k := range u.ports.Ports() {
			if k >= numPorts {
				return nil, fmt.Errorf("throughput: port %d out of range (%d ports)", k, numPorts)
			}
			x := p.AddVariable(0)
			xs = append(xs, xref{x, k})
			massTerms = append(massTerms, lp.Term{Var: x, Coeff: 1})
			xByPort[k] = append(xByPort[k], x)
		}
		if err := p.AddConstraint(massTerms, lp.EQ, u.mass); err != nil {
			return nil, err
		}
	}
	for k := 0; k < numPorts; k++ {
		if len(xByPort[k]) == 0 {
			continue
		}
		cterms := make([]lp.Term, 0, len(xByPort[k])+1)
		for _, x := range xByPort[k] {
			cterms = append(cterms, lp.Term{Var: x, Coeff: 1})
		}
		cterms = append(cterms, lp.Term{Var: tVar, Coeff: -1})
		if err := p.AddConstraint(cterms, lp.LE, 0); err != nil {
			return nil, err
		}
	}

	sol := p.Solve()
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("throughput: LP status %v", sol.Status)
	}

	a := &Analysis{
		Throughput: sol.Objective,
		PortLoad:   make([]float64, numPorts),
	}
	for _, x := range xs {
		v, err := sol.Value(x.v)
		if err != nil {
			return nil, err
		}
		a.PortLoad[x.port] += v
	}
	const eps = 1e-6
	for k, load := range a.PortLoad {
		if math.Abs(load-a.Throughput) < eps && a.Throughput > 0 {
			a.Bottleneck = a.Bottleneck.With(k)
		}
	}
	return a, nil
}

// Render draws the analysis as a small text report with one bar per port,
// in the style of the paper's Figure 3.
func (a *Analysis) Render(portNames []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "throughput: %.3f cycles/iteration\n", a.Throughput)
	maxLoad := a.Throughput
	if maxLoad <= 0 {
		maxLoad = 1
	}
	const width = 40
	for k, load := range a.PortLoad {
		name := fmt.Sprintf("P%d", k)
		if portNames != nil && k < len(portNames) {
			name = portNames[k]
		}
		bar := int(load/maxLoad*width + 0.5)
		if bar > width {
			bar = width
		}
		marker := " "
		if a.Bottleneck.Has(k) {
			marker = "*"
		}
		fmt.Fprintf(&b, "%-6s %s%-*s %6.3f%s\n", name, "|", width, strings.Repeat("#", bar), load, marker)
	}
	if !a.Bottleneck.IsEmpty() {
		names := make([]string, 0, a.Bottleneck.Count())
		for _, k := range a.Bottleneck.Ports() {
			if portNames != nil && k < len(portNames) {
				names = append(names, portNames[k])
			} else {
				names = append(names, fmt.Sprintf("P%d", k))
			}
		}
		fmt.Fprintf(&b, "bottleneck ports: %s\n", strings.Join(names, ","))
	}
	return b.String()
}
