// The validate example demonstrates mapping *refinement*: starting from
// an existing but outdated port mapping (here: the degraded llvm-mca
// model for the ZEN-like core), PMEvo's evolutionary search corrects it
// against fresh measurements — the OSACA-style validation use case the
// paper positions itself against (§6.1: "Our approach systematically
// extends this line of work to derive new port mappings").
//
// The refined mapping is exported as an LLVM-style scheduling model
// fragment, closing the loop the paper proposes ("llvm-mca and OSACA
// can benefit from port mappings by PMEvo").
//
// Run with:
//
//	go run ./examples/validate
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pmevo/internal/congruence"
	"pmevo/internal/evo"
	"pmevo/internal/exp"
	"pmevo/internal/export"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/stats"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

func main() {
	proc := uarch.ZEN()

	// Work on a small stratified subset so the example runs in seconds.
	var forms []int
	for _, class := range proc.ISA.Classes() {
		forms = append(forms, proc.ISA.FormsInClass(class)[0].ID)
	}
	fmt.Printf("refining the llvm-mca model for %s over %d instruction forms\n",
		proc.Name, len(forms))

	// Measure the paper's experiment set on the virtual machine.
	h, err := measure.NewHarness(proc, measure.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	set, err := exp.GenerateAndMeasure(context.Background(), measure.SubsetMeasurer{H: h, IDs: forms}, len(forms))
	if err != nil {
		log.Fatal(err)
	}
	classes, err := congruence.Partition(set, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	repSet := classes.ProjectSet(set)

	// The outdated starting point: llvm-mca's degraded model, projected
	// onto the representatives.
	stale := staleMapping(proc, forms, classes)
	staleErr := davg(stale, repSet)
	fmt.Printf("stale llvm-mca model: Davg = %.1f%% on the measured experiments\n", staleErr*100)

	// Refine: warm-start the EA from the stale mapping, accuracy-leaning.
	opts := evo.Options{
		PopulationSize:  300,
		MaxGenerations:  40,
		NumPorts:        proc.Config.NumPorts,
		LocalSearch:     true,
		VolumeObjective: true,
		AccuracyWeight:  4,
		Seed:            7,
		SeedMappings:    []*portmap.Mapping{stale},
	}
	res, err := evo.Run(context.Background(), repSet, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined mapping:      Davg = %.1f%% after %d generations\n",
		res.BestError*100, res.Generations)

	// Score stale vs refined on fresh random experiments.
	rng := rand.New(rand.NewSource(99))
	var meas, predStale, predRefined []float64
	reps := classes.Rep
	for i := 0; i < 300; i++ {
		e := portmap.RandomExperiment(rng, repSet.NumInsts, 4)
		full := make(portmap.Experiment, len(e))
		for j, t := range e {
			full[j] = portmap.InstCount{Inst: forms[reps[t.Inst]], Count: t.Count}
		}
		m, err := h.Measure(full)
		if err != nil {
			log.Fatal(err)
		}
		meas = append(meas, m)
		predStale = append(predStale, throughput.OfExperiment(stale, e))
		predRefined = append(predRefined, throughput.OfExperiment(res.Best, e))
	}
	fmt.Printf("\nfresh-experiment MAPE: stale %.1f%%  ->  refined %.1f%%\n",
		stats.MAPE(predStale, meas), stats.MAPE(predRefined, meas))

	// Export the refined mapping for llvm-mca-style consumption.
	res.Best.InstNames = repNames(proc, forms, classes)
	res.Best.PortNames = proc.PortNames
	fmt.Println("\nLLVM scheduling model fragment (first lines):")
	var sample lineLimiter
	if err := export.LLVMSchedModel(&sample, res.Best, "ZenRefined"); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sample.String())
}

// staleMapping projects a degraded model — each µop restricted to its
// single lowest port, like internal/predictors' ZEN llvm-mca model —
// onto the congruence representatives of the form subset.
func staleMapping(proc *uarch.Processor, forms []int, classes *congruence.Classes) *portmap.Mapping {
	m := proc.GroundTruth.Clone()
	for i, uops := range m.Decomp {
		for j, uc := range uops {
			if uc.Ports.Count() > 1 {
				uops[j].Ports = portmap.SinglePort(uc.Ports.Min())
			}
		}
		m.SetDecomp(i, uops)
	}
	out := portmap.NewMapping(classes.NumClasses(), m.NumPorts)
	for cls, rep := range classes.Rep {
		// SetDecomp copies and keeps the fingerprint cache fresh.
		out.SetDecomp(cls, m.Decomp[forms[rep]])
	}
	return out
}

func repNames(proc *uarch.Processor, forms []int, classes *congruence.Classes) []string {
	names := make([]string, classes.NumClasses())
	for cls, rep := range classes.Rep {
		names[cls] = proc.ISA.Form(forms[rep]).Name()
	}
	return names
}

// davg computes the average relative prediction error of a mapping on a
// measured set.
func davg(m *portmap.Mapping, set *exp.Set) float64 {
	var te throughput.Evaluator
	sum := 0.0
	for _, meas := range set.Measurements {
		pred := te.ThroughputOf(m, meas.Exp)
		d := pred - meas.Throughput
		if d < 0 {
			d = -d
		}
		sum += d / meas.Throughput
	}
	return sum / float64(len(set.Measurements))
}

// lineLimiter collects the first 12 lines written to it.
type lineLimiter struct {
	lines int
	buf   []byte
}

func (l *lineLimiter) Write(p []byte) (int, error) {
	for _, b := range p {
		if l.lines >= 12 {
			break
		}
		l.buf = append(l.buf, b)
		if b == '\n' {
			l.lines++
		}
	}
	return len(p), nil
}

func (l *lineLimiter) String() string { return string(l.buf) }
