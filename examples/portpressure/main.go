// The portpressure example analyzes the execution-port bottleneck of a
// compute kernel on the simulated Skylake-like core, the use case that
// motivates port mappings in tools like llvm-mca and IACA (paper §1,
// §6): the mapping tells the developer *which* resource limits a loop,
// not just how slow it is.
//
// The kernel is the inner loop of a fused multiply-add reduction with a
// gather-style load, once in a scalar and once in a vectorized variant.
//
// Run with:
//
//	go run ./examples/portpressure
package main

import (
	"fmt"
	"log"

	"pmevo"
)

// mix builds an experiment from (form name, count) pairs against the
// processor's ISA.
func mix(proc *pmevo.VirtualProcessor, parts map[string]int) pmevo.Experiment {
	var e pmevo.Experiment
	for name, count := range parts {
		f, ok := proc.ISA.FormByName(name)
		if !ok {
			log.Fatalf("unknown form %s", name)
		}
		e = append(e, pmevo.InstCount{Inst: f.ID, Count: count})
	}
	return e.Normalize()
}

func analyze(proc *pmevo.VirtualProcessor, title string, e pmevo.Experiment) float64 {
	a, err := pmevo.Analyze(proc.GroundTruth, e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", title)
	fmt.Print(a.Render(proc.PortNames))
	fmt.Println()
	return a.Throughput
}

func main() {
	proc, err := pmevo.Processor("SKL")
	if err != nil {
		log.Fatal(err)
	}

	// Scalar reduction: load, multiply, add, loop bookkeeping.
	scalar := mix(proc, map[string]int{
		"mov_r64_m64":  2, // two loads
		"imul_r64_r64": 2, // two multiplies (port 1 only!)
		"add_r64_r64":  2, // two adds
		"lea_r64_m64":  1, // index update
	})
	tScalar := analyze(proc, "scalar reduction (per 2 elements)", scalar)

	// Vectorized: one 256-bit FMA replaces 8 multiply-adds.
	vector := mix(proc, map[string]int{
		"vmovdqa_v256_m256":          2, // two vector loads
		"vfmadd231ps_v256_v256_v256": 2, // two FMAs
		"lea_r64_m64":                1,
	})
	tVector := analyze(proc, "vectorized reduction (per 16 elements)", vector)

	fmt.Printf("scalar:     %.2f cycles / 2 elements  = %.3f cycles/element\n", tScalar, tScalar/2)
	fmt.Printf("vectorized: %.2f cycles / 16 elements = %.3f cycles/element\n", tVector, tVector/16)
	fmt.Printf("speedup: %.1fx\n", (tScalar/2)/(tVector/16))

	// The mapping also answers "what if": would a third FMA per
	// iteration still be free, or does port pressure bite?
	moreFMA := mix(proc, map[string]int{
		"vmovdqa_v256_m256":          2,
		"vfmadd231ps_v256_v256_v256": 3,
		"lea_r64_m64":                1,
	})
	a, err := pmevo.Analyze(proc.GroundTruth, moreFMA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadding a third FMA: %.2f cycles (bottleneck %s)\n",
		a.Throughput, a.Bottleneck)
}
