// The quickstart example infers a port mapping for a tiny made-up
// processor using nothing but a throughput oracle, demonstrating the
// public API end to end in well under a second.
//
// A hidden 3-port machine executes five instruction kinds; PMEvo only
// gets to ask "how many cycles per iteration does this instruction mix
// sustain?" — the same interface a real measurement harness provides —
// and reconstructs a port mapping that explains every answer.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pmevo"
	"pmevo/internal/isa"
	"pmevo/internal/portmap"
)

// hiddenMachine is the secret ground truth: PMEvo never sees it, only
// the throughputs it induces.
func hiddenMachine() *pmevo.Mapping {
	m := portmap.NewMapping(5, 3)
	p01 := portmap.MakePortSet(0, 1)
	p2 := portmap.MakePortSet(2)
	m.SetDecomp(0, []portmap.UopCount{{Ports: p01, Count: 1}})                        // add
	m.SetDecomp(1, []portmap.UopCount{{Ports: p01, Count: 1}})                        // sub
	m.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})     // mul
	m.SetDecomp(3, []portmap.UopCount{{Ports: p2, Count: 1}})                         // store
	m.SetDecomp(4, []portmap.UopCount{{Ports: p01, Count: 1}, {Ports: p2, Count: 1}}) // push: 2 µops
	return m
}

// oracle implements pmevo.Measurer by consulting the hidden machine.
type oracle struct{ truth *pmevo.Mapping }

func (o oracle) Measure(e pmevo.Experiment) (float64, error) {
	return pmevo.Throughput(o.truth, e), nil
}

func main() {
	// Describe the instructions under test (names and operands only —
	// nothing about ports or µops).
	miniISA := isa.New("mini")
	for _, mnem := range []string{"add", "sub", "mul", "store", "push"} {
		miniISA.MustAddForm(isa.Form{
			Mnemonic: mnem,
			Operands: []isa.Operand{
				{Kind: isa.KindReg, Class: isa.ClassGPR, Width: 64, Write: true},
				{Kind: isa.KindReg, Class: isa.ClassGPR, Width: 64, Read: true},
			},
			Class: mnem,
		})
	}

	truth := hiddenMachine()

	cfg := pmevo.DefaultConfig(3) // the user supplies the port count
	cfg.Evo.PopulationSize = 200
	cfg.Evo.MaxGenerations = 40
	cfg.Evo.Seed = 42
	cfg.Progress = func(stage string) { fmt.Println("  »", stage) }

	fmt.Println("inferring a port mapping for the hidden 3-port machine:")
	res, err := pmevo.Infer(context.Background(), miniISA, oracle{truth}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ninferred mapping:")
	fmt.Print(res.Mapping)

	fmt.Printf("\ncongruence classes: %d (add and sub should share one)\n",
		res.Classes.NumClasses())
	fmt.Printf("average prediction error on the measured experiments: %.1f%%\n",
		res.Evo.BestError*100)

	// Use the inferred mapping the way a compiler backend would: ask
	// which of two instruction mixes sustains higher throughput.
	mixA := pmevo.Experiment{{Inst: 0, Count: 2}, {Inst: 2, Count: 1}} // 2×add + mul
	mixB := pmevo.Experiment{{Inst: 0, Count: 2}, {Inst: 3, Count: 1}} // 2×add + store
	fmt.Printf("\npredicted cycles/iteration: mix A = %.2f, mix B = %.2f\n",
		pmevo.Throughput(res.Mapping, mixA), pmevo.Throughput(res.Mapping, mixB))
	fmt.Printf("ground-truth cycles/iter:   mix A = %.2f, mix B = %.2f\n",
		pmevo.Throughput(truth, mixA), pmevo.Throughput(truth, mixB))
}
