// The fullpipeline example runs the complete PMEvo system against the
// simulated Skylake-like processor at reduced scale: generate and
// measure experiments on the virtual silicon, filter congruent forms,
// evolve a port mapping, and score its predictions against fresh
// measurements — a miniature of the paper's Table 3 row for PMEvo.
//
// Expect a runtime of a couple of minutes.
//
// Run with:
//
//	go run ./examples/fullpipeline [-proc SKL] [-forms 2] [-islands 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"pmevo/internal/eval"
	"pmevo/internal/exp"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/predictors"
	"pmevo/internal/stats"
)

func main() {
	procName := flag.String("proc", "SKL", "processor under test: SKL|ZEN|A72")
	formsPerClass := flag.Int("forms", 2, "instruction forms per semantic class")
	islands := flag.Int("islands", 0,
		"evolve N concurrent island sub-populations with ring migration (0: single population)")
	flag.Parse()

	scale := eval.DefaultScale()
	scale.MaxFormsPerClass = *formsPerClass
	scale.Population = 300
	scale.MaxGenerations = 40
	scale.Islands = *islands

	start := time.Now()
	fmt.Printf("running the PMEvo pipeline on the virtual %s...\n", *procName)
	run, err := eval.RunPipeline(context.Background(), *procName, scale)
	if err != nil {
		log.Fatal(err)
	}
	res := run.Result
	fmt.Printf("  %d forms, %d congruence classes, %d measured experiments\n",
		run.SubISA.NumForms(), res.Classes.NumClasses(), run.Harness.Measurements())
	fmt.Printf("  evolution: %d generations, Davg = %.3f, %d distinct µops\n",
		res.Evo.Generations, res.Evo.BestError, res.NumUops())
	fmt.Printf("  wall time: %s\n\n", time.Since(start).Round(time.Second))

	fmt.Println("inferred mapping (congruence-class representatives):")
	fmt.Print(res.RepMapping)

	// Score against a fresh benchmark set, like §5.3: random size-5
	// multisets measured on the virtual machine.
	proc := run.Proc
	mopts := measure.DefaultOptions()
	mopts.Seed = 999
	h, err := measure.NewHarness(proc, mopts)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(999))
	bench := exp.RandomBenchmarkSet(rng, run.SubISA.NumForms(), 400, 5)

	pmevoPred := predictors.FromMapping("PMEvo", res.Mapping)
	mca := predictors.LLVMMCA(proc)

	var meas, predPM, predMCA []float64
	for _, e := range bench {
		full := make(portmap.Experiment, len(e))
		for i, t := range e {
			full[i] = portmap.InstCount{Inst: run.FormIDs[t.Inst], Count: t.Count}
		}
		m, err := h.Measure(full)
		if err != nil {
			log.Fatal(err)
		}
		pp, err := pmevoPred.Predict(e)
		if err != nil {
			log.Fatal(err)
		}
		pm, err := mca.Predict(full)
		if err != nil {
			log.Fatal(err)
		}
		meas = append(meas, m)
		predPM = append(predPM, pp)
		predMCA = append(predMCA, pm)
	}

	fmt.Printf("\naccuracy on %d fresh random experiments of size 5 (%s):\n", len(bench), proc.Name)
	fmt.Printf("  %-10s MAPE %5.1f%%   Pearson %.2f   Spearman %.2f\n",
		"PMEvo", stats.MAPE(predPM, meas), stats.Pearson(meas, predPM), stats.Spearman(meas, predPM))
	fmt.Printf("  %-10s MAPE %5.1f%%   Pearson %.2f   Spearman %.2f\n",
		"llvm-mca", stats.MAPE(predMCA, meas), stats.Pearson(meas, predMCA), stats.Spearman(meas, predMCA))

	heat := stats.BinHeatmap(meas, predPM, 35, 10)
	fmt.Println("\nPMEvo predicted-vs-measured heat map (cf. paper Figure 7):")
	fmt.Print(heat.Render())
}
