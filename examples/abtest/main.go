// The abtest example uses port mappings the way an optimizing compiler
// backend would (paper §6.2: "A compact port mapping is more easily
// interpreted for constructing well-performing instruction sequences"):
// given two instruction selections for the same computation, predict
// which sustains higher throughput on each of the three processors —
// and check the prediction against the simulated hardware.
//
// The computation is x*9 for a block of independent values, selectable
// as either `imul` (one port-restricted multiply) or the classic
// strength reduction `shl + add` (two cheap ops on more ports).
//
// Run with:
//
//	go run ./examples/abtest
//	go run ./examples/abtest -engine=lp
//
// The -engine flag selects the throughput engine by name through the
// pmevo.Predictor facade; all engines agree on the predictions.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"pmevo"
)

// variant names an instruction selection per ISA.
type variant struct {
	name string
	x86  map[string]int
	arm  map[string]int
}

func main() {
	engineName := flag.String("engine", "bottleneck",
		"throughput engine: "+strings.Join(pmevo.EngineNames(), "|"))
	flag.Parse()
	eng, err := pmevo.EngineByName(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	variants := []variant{
		{
			name: "multiply",
			x86:  map[string]int{"imul_r64_r64": 4},
			arm:  map[string]int{"mul_r64_r64_r64": 4},
		},
		{
			name: "shift+add",
			x86:  map[string]int{"shl_r64_i8": 4, "add_r64_r64": 4},
			arm:  map[string]int{"lsl_r64_r64_i6": 4, "add_r64_r64_r64": 4},
		},
	}

	for _, procName := range []string{"SKL", "ZEN", "A72"} {
		proc, err := pmevo.Processor(procName)
		if err != nil {
			log.Fatal(err)
		}
		measurer, err := pmevo.NewSimMeasurer(proc)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s (%s) ===\n", proc.Name, proc.Microarch)
		for _, v := range variants {
			parts := v.x86
			if proc.InstrSet == "ARMv8-A" {
				parts = v.arm
			}
			var e pmevo.Experiment
			for name, count := range parts {
				f, ok := proc.ISA.FormByName(name)
				if !ok {
					log.Fatalf("%s: unknown form %s", proc.Name, name)
				}
				e = append(e, pmevo.InstCount{Inst: f.ID, Count: count})
			}
			e = e.Normalize()

			predicted, err := eng.Predict(proc.GroundTruth, e)
			if err != nil {
				log.Fatal(err)
			}
			measured, err := measurer.Measure(e)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s predicted %.2f cycles/block, measured %.2f\n",
				v.name, predicted, measured)
		}
		fmt.Println()
	}

	fmt.Println("Reading the numbers: on cores with a single multiply port the")
	fmt.Println("multiplies serialize, while shift+add spreads across the ALU")
	fmt.Println("ports — unless shifts are port-restricted too (SKL: p06).")
}
