module pmevo

go 1.24
