package pmevo_test

import (
	"fmt"

	"pmevo"
	"pmevo/internal/portmap"
)

// ExampleThroughput computes the throughput of the paper's Example 1:
// {add→2, mul→1, store→1} under the Figure 2 mapping has throughput 1.5
// cycles, limited by the two ALU ports.
func ExampleThroughput() {
	m := portmap.TwoLevelFromPorts(3, []pmevo.PortSet{
		portmap.MakePortSet(0),    // mul: P1 only
		portmap.MakePortSet(0, 1), // add: P1 or P2
		portmap.MakePortSet(0, 1), // sub: P1 or P2
		portmap.MakePortSet(2),    // store: P3
	})
	e := pmevo.Experiment{
		{Inst: 1, Count: 2}, // 2× add
		{Inst: 0, Count: 1}, // 1× mul
		{Inst: 3, Count: 1}, // 1× store
	}
	fmt.Printf("%.1f cycles/iteration\n", pmevo.Throughput(m, e))
	// Output: 1.5 cycles/iteration
}

// ExampleAnalyze shows the port-pressure view of the same experiment:
// ports P1 and P2 form the bottleneck set Q* of the paper's Example 2.
func ExampleAnalyze() {
	m := portmap.TwoLevelFromPorts(3, []pmevo.PortSet{
		portmap.MakePortSet(0),
		portmap.MakePortSet(0, 1),
		portmap.MakePortSet(0, 1),
		portmap.MakePortSet(2),
	})
	e := pmevo.Experiment{{Inst: 1, Count: 2}, {Inst: 0, Count: 1}, {Inst: 3, Count: 1}}
	a, _ := pmevo.Analyze(m, e)
	fmt.Printf("throughput %.1f, bottleneck %s\n", a.Throughput, a.Bottleneck)
	// Output: throughput 1.5, bottleneck {P0,P1}
}

// ExampleProcessor lists the evaluated virtual machines of Table 1.
func ExampleProcessor() {
	for _, p := range pmevo.Processors() {
		fmt.Printf("%s: %s, %d model ports\n", p.Name, p.Microarch, p.Config.NumPorts)
	}
	// Output:
	// SKL: Skylake, 9 model ports
	// ZEN: Zen+, 10 model ports
	// A72: Cortex-A72, 7 model ports
}
