package pmevo_test

import (
	"context"
	"math"
	"testing"

	"pmevo"
	"pmevo/internal/isa"
	"pmevo/internal/portmap"
)

// TestFacadeProcessors exercises the public processor accessors.
func TestFacadeProcessors(t *testing.T) {
	procs := pmevo.Processors()
	if len(procs) != 3 {
		t.Fatalf("Processors() returned %d, want 3", len(procs))
	}
	skl, err := pmevo.Processor("SKL")
	if err != nil {
		t.Fatal(err)
	}
	if skl.Microarch != "Skylake" {
		t.Errorf("SKL microarch = %q", skl.Microarch)
	}
	if _, err := pmevo.Processor("bogus"); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestFacadeISAs(t *testing.T) {
	if n := pmevo.SyntheticX86().NumForms(); n != 310 {
		t.Errorf("x86 forms = %d", n)
	}
	if n := pmevo.SyntheticARM().NumForms(); n != 390 {
		t.Errorf("ARM forms = %d", n)
	}
}

func TestFacadeThroughputAndAnalyze(t *testing.T) {
	proc, err := pmevo.Processor("SKL")
	if err != nil {
		t.Fatal(err)
	}
	add, ok := proc.ISA.FormByName("add_r64_r64")
	if !ok {
		t.Fatal("add_r64_r64 missing")
	}
	e := pmevo.Experiment{{Inst: add.ID, Count: 4}}
	tp := pmevo.Throughput(proc.GroundTruth, e)
	if math.Abs(tp-1.0) > 1e-9 { // 4 adds over 4 ALU ports
		t.Errorf("Throughput = %g, want 1.0", tp)
	}
	a, err := pmevo.Analyze(proc.GroundTruth, e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Throughput-tp) > 1e-6 {
		t.Errorf("Analyze.Throughput = %g vs %g", a.Throughput, tp)
	}
}

func TestFacadeMeasurer(t *testing.T) {
	proc, err := pmevo.Processor("A72")
	if err != nil {
		t.Fatal(err)
	}
	m, err := pmevo.NewSimMeasurer(proc)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := m.Measure(pmevo.Experiment{{Inst: 0, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 {
		t.Errorf("measured %g", tp)
	}
}

// TestFacadeInferEndToEnd runs the public Infer on a small hidden
// machine defined through the internal portmap package (as library
// consumers would define a Measurer against real hardware).
func TestFacadeInferEndToEnd(t *testing.T) {
	hidden := portmap.NewMapping(3, 3)
	hidden.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	hidden.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(0, 1), Count: 1}})
	hidden.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(2), Count: 2}})

	a := miniFacadeISA(t)
	cfg := pmevo.DefaultConfig(3)
	cfg.Evo.PopulationSize = 150
	cfg.Evo.MaxGenerations = 40
	cfg.Evo.Seed = 5
	cfg.Evo.Workers = 2
	// Tiny problems are prone to the compactness trap of equal-weight
	// scalarization; lean the fitness toward accuracy (extension knob).
	cfg.Evo.AccuracyWeight = 10

	res, err := pmevo.Infer(context.Background(), a, oracle{hidden}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evo.BestError > 0.05 {
		t.Errorf("Davg = %g", res.Evo.BestError)
	}
	for _, e := range []pmevo.Experiment{
		{{Inst: 0, Count: 1}, {Inst: 1, Count: 1}},
		{{Inst: 2, Count: 1}, {Inst: 0, Count: 2}},
	} {
		want := pmevo.Throughput(hidden, e)
		got := pmevo.Throughput(res.Mapping, e)
		if math.Abs(got-want)/want > 0.35 {
			t.Errorf("experiment %v: predicted %g, hidden truth %g", e, got, want)
		}
	}
}

type oracle struct{ truth *pmevo.Mapping }

func (o oracle) Measure(e pmevo.Experiment) (float64, error) {
	return pmevo.Throughput(o.truth, e), nil
}

func miniFacadeISA(t *testing.T) *pmevo.ISA {
	t.Helper()
	a := isa.New("facade-mini")
	for _, mnem := range []string{"alpha", "beta", "gamma"} {
		a.MustAddForm(isa.Form{
			Mnemonic: mnem,
			Operands: []isa.Operand{
				{Kind: isa.KindReg, Class: isa.ClassGPR, Width: 64, Write: true},
				{Kind: isa.KindReg, Class: isa.ClassGPR, Width: 64, Read: true},
			},
			Class: mnem,
		})
	}
	return a
}
