// Benchmarks regenerating the paper's tables and figures, plus the
// ablation studies called out in DESIGN.md.
//
// The per-table/figure benchmarks run the corresponding eval driver at
// QuickScale once per iteration; run them individually with
// `-benchtime=1x` for a single regeneration, or use cmd/pmevo-bench for
// full-scale runs with rendered output. The engine benchmarks
// (Bottleneck vs LP, naive vs optimized) are conventional
// microbenchmarks and reproduce the performance claims of §5.4.
package pmevo_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"pmevo/internal/congruence"
	"pmevo/internal/eval"
	"pmevo/internal/evo"
	"pmevo/internal/exp"
	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

// --- Table 1 ---------------------------------------------------------

func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(uarch.All()) != 3 {
			b.Fatal("expected three processors")
		}
	}
}

// --- Figure 6 --------------------------------------------------------

func BenchmarkFigure6(b *testing.B) {
	scale := eval.QuickScale()
	scale.Figure6MaxLen = 6
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure6(context.Background(), scale); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 2/3/4 and Figure 7 ---------------------------------------

// The pipeline suite is expensive; all four benchmarks derived from it
// share one instance.
var (
	suiteOnce sync.Once
	suiteVal  *eval.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *eval.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = eval.NewSuite(context.Background(), eval.QuickScale(), nil)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

func BenchmarkTable2(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table2(); len(rows) != 3 {
			b.Fatal("bad table 2")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := s.Accuracy(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if out := acc.RenderTable3(); len(out) == 0 {
			b.Fatal("empty table 3")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := s.Accuracy(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if out := acc.RenderTable4(); len(out) == 0 {
			b.Fatal("empty table 4")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := s.Accuracy(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if out := acc.RenderFigure7(); len(out) == 0 {
			b.Fatal("empty figure 7")
		}
	}
}

// --- Figure 8: bottleneck simulation algorithm vs LP solver ----------

// figure8Workload builds a fixed workload: random three-level mappings
// over an artificial 100-instruction ISA and random experiments, as in
// §5.4.
func figure8Workload(ports, length, n int) []([]portmap.MassTerm) {
	rng := rand.New(rand.NewSource(42))
	var out [][]portmap.MassTerm
	for len(out) < n {
		m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 100, NumPorts: ports, MaxUops: 3})
		for e := 0; e < 8 && len(out) < n; e++ {
			expr := portmap.RandomExperiment(rng, 100, length)
			out = append(out, m.Flatten(expr))
		}
	}
	return out
}

func BenchmarkBottleneckVsLP_Ports(b *testing.B) {
	for _, ports := range []int{4, 8, 10, 14, 18} {
		work := figure8Workload(ports, 4, 32)
		// The paper's Θ(2^|P|) algorithm (with the zeta-transform
		// optimization): its cost grows exponentially in the ports.
		b.Run(benchName("Bottleneck", ports), func(b *testing.B) {
			var ev throughput.Evaluator
			for i := 0; i < b.N; i++ {
				ev.BottleneckTable(work[i%len(work)])
			}
		})
		// Our production dispatcher additionally short-circuits through
		// union enumeration when the experiment has few distinct µops.
		b.Run(benchName("Dispatched", ports), func(b *testing.B) {
			var ev throughput.Evaluator
			for i := 0; i < b.N; i++ {
				ev.Bottleneck(work[i%len(work)])
			}
		})
		b.Run(benchName("LP", ports), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := throughput.LP(work[i%len(work)], ports); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBottleneckVsLP_Length(b *testing.B) {
	for _, length := range []int{1, 4, 7, 10} {
		work := figure8Workload(10, length, 32)
		b.Run(benchName("Bottleneck", length), func(b *testing.B) {
			var ev throughput.Evaluator
			for i := 0; i < b.N; i++ {
				ev.Bottleneck(work[i%len(work)])
			}
		})
		b.Run(benchName("LP", length), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := throughput.LP(work[i%len(work)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(engine string, x int) string {
	digits := ""
	if x < 10 {
		digits = "0"
	}
	return engine + "_" + digits + itoa(x)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// --- Ablation: naive subset scan vs subset-sum table vs union --------

func BenchmarkBottleneckNaive(b *testing.B) {
	work := figure8Workload(10, 5, 32)
	for i := 0; i < b.N; i++ {
		throughput.BottleneckNaive(work[i%len(work)])
	}
}

func BenchmarkBottleneckSOS(b *testing.B) {
	work := figure8Workload(10, 5, 32)
	var ev throughput.Evaluator
	for i := 0; i < b.N; i++ {
		ev.Bottleneck(work[i%len(work)])
	}
}

func BenchmarkBottleneckUnion(b *testing.B) {
	work := figure8Workload(10, 5, 32)
	for i := 0; i < b.N; i++ {
		throughput.BottleneckUnion(work[i%len(work)])
	}
}

// --- Memoized + incremental fitness evaluation ------------------------

// BenchmarkFitnessEvolution measures the population fitness loop at
// QuickScale: the §4.4 evolutionary loop plus greedy local search over
// the 12-instruction/8-port ablation set, with the engine's redundancy-
// exploiting layer (throughput memo, duplicate-candidate skip, delta
// local search) enabled. BenchmarkFitnessEvolutionNoCache is the same
// loop with the layer disabled — results are bit-identical (pinned in
// internal/evo) — so the pair quantifies the caching speedup. The
// evals/s metric is candidate Davg computations per second.

func BenchmarkFitnessEvolution(b *testing.B) { benchFitnessEvolution(b, false) }

func BenchmarkFitnessEvolutionNoCache(b *testing.B) { benchFitnessEvolution(b, true) }

func benchFitnessEvolution(b *testing.B, disableCache bool) {
	scale := eval.QuickScale()
	set := ablationSet(b)
	opts := evo.Options{
		PopulationSize:  scale.Population,
		MaxGenerations:  scale.MaxGenerations,
		NumPorts:        8,
		LocalSearch:     true,
		VolumeObjective: true,
		Seed:            3,
		DisableCache:    disableCache,
	}
	b.ResetTimer()
	evals := 0
	for i := 0; i < b.N; i++ {
		res, err := evo.Run(context.Background(), set, opts)
		if err != nil {
			b.Fatal(err)
		}
		evals += res.FitnessEvaluations
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(evals)/s, "evals/s")
	}
}

// --- Ablation: evolutionary algorithm design choices -----------------

// ablationSet builds a measured experiment set over a hidden 8-port
// machine with 12 instructions.
func ablationSet(b *testing.B) *exp.Set {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	hidden := portmap.Random(rng, portmap.RandomOptions{NumInsts: 12, NumPorts: 8, MaxUops: 2})
	set, err := exp.GenerateAndMeasure(context.Background(), oracleMeasurer{hidden}, 12)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

type oracleMeasurer struct{ m *portmap.Mapping }

func (o oracleMeasurer) Measure(e portmap.Experiment) (float64, error) {
	return throughput.OfExperiment(o.m, e), nil
}

func ablationOpts() evo.Options {
	return evo.Options{
		PopulationSize:  120,
		MaxGenerations:  20,
		NumPorts:        8,
		LocalSearch:     true,
		VolumeObjective: true,
		Seed:            3,
	}
}

func BenchmarkAblationBaselineEA(b *testing.B) {
	set := ablationSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evo.Run(context.Background(), set, ablationOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMutation(b *testing.B) {
	set := ablationSet(b)
	opts := ablationOpts()
	opts.MutationRate = 0.1 // the paper rejects mutation; measure its cost
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evo.Run(context.Background(), set, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoLocalSearch(b *testing.B) {
	set := ablationSet(b)
	opts := ablationOpts()
	opts.LocalSearch = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evo.Run(context.Background(), set, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoVolumeObjective(b *testing.B) {
	set := ablationSet(b)
	opts := ablationOpts()
	opts.VolumeObjective = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evo.Run(context.Background(), set, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCongruence measures the evolutionary search with and
// without congruence filtering on the SKL virtual machine: the filtered
// run searches over class representatives only (§4.3's point).
func BenchmarkAblationCongruence(b *testing.B) {
	proc := uarch.SKL()
	sub, ids := subsetISA(b, proc, 2)
	mopts := measure.DefaultOptions()
	h, err := measure.NewHarness(proc, mopts)
	if err != nil {
		b.Fatal(err)
	}
	set, err := exp.GenerateAndMeasure(context.Background(), measure.SubsetMeasurer{H: h, IDs: ids}, sub.NumForms())
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, s *exp.Set) {
		opts := evo.Options{
			PopulationSize:  100,
			MaxGenerations:  10,
			NumPorts:        proc.Config.NumPorts,
			LocalSearch:     false,
			VolumeObjective: true,
			Seed:            1,
		}
		for i := 0; i < b.N; i++ {
			if _, err := evo.Run(context.Background(), s, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Unfiltered", func(b *testing.B) { run(b, set) })
	b.Run("Filtered", func(b *testing.B) {
		classes, err := congruencePartition(set)
		if err != nil {
			b.Fatal(err)
		}
		run(b, classes)
	})
}

// subsetISA picks up to perClass forms per semantic class, returning
// the subset ISA and the original form IDs.
func subsetISA(b *testing.B, proc *uarch.Processor, perClass int) (*isa.ISA, []int) {
	b.Helper()
	var picked []*isa.Form
	var ids []int
	for _, class := range proc.ISA.Classes() {
		forms := proc.ISA.FormsInClass(class)
		n := perClass
		if n > len(forms) {
			n = len(forms)
		}
		for _, f := range forms[:n] {
			picked = append(picked, f)
			ids = append(ids, f.ID)
		}
	}
	sub, err := proc.ISA.Subset(proc.ISA.Name+"-bench", picked)
	if err != nil {
		b.Fatal(err)
	}
	return sub, ids
}

// congruencePartition projects a measured set onto its congruence-class
// representatives at the paper's ε = 0.05.
func congruencePartition(set *exp.Set) (*exp.Set, error) {
	classes, err := congruence.Partition(set, 0.05)
	if err != nil {
		return nil, err
	}
	return classes.ProjectSet(set), nil
}

// --- Sublinear measurement: period detection + kernel cache ----------

// BenchmarkMeasurement runs the §4.1/§4.2 measurement protocol
// (generate-and-measure: singletons, pairs, weighted pairs) on the SKL
// virtual machine with the measurement fast path: steady-state period
// detection in the cycle-level simulator plus the kernel-level
// simulation cache. BenchmarkMeasurementNoCache is the same workload
// with both disabled — brute-force cycle-by-cycle simulation of every
// measurement, the pre-optimization cost model. Results are
// bit-identical (pinned by eval.RunMeasureBench and the machine/measure
// property tests); the pair quantifies the measurement speedup. The form
// subset keeps two forms per semantic class, preserving the class-level
// kernel redundancy of Table 1-shaped form sets.
func BenchmarkMeasurement(b *testing.B) { benchMeasurement(b, false) }

func BenchmarkMeasurementNoCache(b *testing.B) { benchMeasurement(b, true) }

func benchMeasurement(b *testing.B, baseline bool) {
	measurements := 0
	for i := 0; i < b.N; i++ {
		// Cold cache per iteration: the kernel cache is process-wide, so
		// without a flush the fast variant would replay hits paid for by
		// earlier benchmarks (or the previous iteration) and stop
		// measuring the simulation fast path.
		measure.FlushSimCache()
		proc := uarch.SKL()
		if baseline {
			proc.Config.PeriodDetectBudget = machine.PeriodDetectDisabled
			proc.Config.EventDrivenDisabled = true
		}
		sub, ids := subsetISA(b, proc, 2)
		mopts := measure.DefaultOptions()
		mopts.DisableSimCache = baseline
		h, err := measure.NewHarness(proc, mopts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exp.GenerateAndMeasure(context.Background(), measure.SubsetMeasurer{H: h, IDs: ids}, sub.NumForms()); err != nil {
			b.Fatal(err)
		}
		measurements += h.Measurements()
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(measurements)/s, "meas/s")
	}
}

// --- Substrate microbenchmarks ---------------------------------------

func BenchmarkMachineRun(b *testing.B) {
	proc := uarch.SKL()
	mach, err := proc.Machine()
	if err != nil {
		b.Fatal(err)
	}
	h, err := measure.NewHarness(proc, measure.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	add, _ := proc.ISA.FormByName("add_r64_r64")
	mul, _ := proc.ISA.FormByName("imul_r64_r64")
	body, _, err := h.BuildLoop(portmap.Experiment{{Inst: add.ID, Count: 2}, {Inst: mul.ID, Count: 1}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mach.Run(body, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineRunDeadCycles times the event-driven fast-forward's
// best case — a latency chain on the highest-latency SKL instruction,
// where most cycles are dead — with the skip on and off (period
// detection disabled on both so the stepper is isolated; the eval
// machine benchmark asserts their bit-equality).
func BenchmarkMachineRunDeadCycles(b *testing.B) {
	for _, eventOff := range []bool{false, true} {
		name := "event"
		if eventOff {
			name = "stepped"
		}
		b.Run(name, func(b *testing.B) {
			proc := uarch.SKL()
			proc.Config.PeriodDetectBudget = machine.PeriodDetectDisabled
			proc.Config.EventDrivenDisabled = eventOff
			mach, err := proc.Machine()
			if err != nil {
				b.Fatal(err)
			}
			div, _ := proc.ISA.FormByName("div_r64_r64")
			body := make([]machine.Inst, 6)
			for i := range body {
				body[i] = machine.Inst{Spec: div.ID, Reads: []int{0}, Writes: []int{0}}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mach.Run(body, 200); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMeasureExperiment(b *testing.B) {
	proc := uarch.SKL()
	h, err := measure.NewHarness(proc, measure.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	add, _ := proc.ISA.FormByName("add_r64_r64")
	ld, _ := proc.ISA.FormByName("mov_r64_m64")
	e := portmap.Experiment{{Inst: add.ID, Count: 1}, {Inst: ld.ID, Count: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Measure(e); err != nil {
			b.Fatal(err)
		}
	}
}
