// Package pmevo is the public facade of the PMEvo reproduction: portable
// inference of port mappings for out-of-order processors by evolutionary
// optimization (Ritter & Hack, PLDI 2020).
//
// The library infers a processor's port mapping — which execution ports
// can run each instruction, via which µops — purely from throughput
// measurements of short, dependency-free instruction sequences. No
// hardware performance counters are required, which makes the approach
// portable across vendors.
//
// # Quick start
//
//	proc, _ := pmevo.Processor("SKL")          // a simulated Skylake-like core
//	harness, _ := pmevo.NewSimMeasurer(proc)   // measures experiments on it
//	cfg := pmevo.DefaultConfig(proc.Config.NumPorts)
//	result, _ := pmevo.Infer(context.Background(), proc.ISA, harness, cfg)
//	fmt.Println(result.Mapping)
//
// Real hardware can be targeted by implementing the one-method Measurer
// interface with a driver that runs the §4.2 measurement loops on
// silicon; everything else is unchanged.
//
// The facade re-exports the most important types; the full machinery
// lives in the internal packages (see DESIGN.md for the map).
package pmevo

import (
	"context"

	"pmevo/internal/core"
	"pmevo/internal/engine"
	"pmevo/internal/evo"
	"pmevo/internal/exp"
	"pmevo/internal/isa"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

// Experiment is a multiset of instructions whose steady-state throughput
// is measured or predicted, identified by dense instruction-form IDs.
type Experiment = portmap.Experiment

// InstCount is one term of an Experiment.
type InstCount = portmap.InstCount

// Mapping is a port mapping in the three-level model (instructions →
// µops → ports).
type Mapping = portmap.Mapping

// PortSet is a set of execution ports (one bit per port).
type PortSet = portmap.PortSet

// ISA describes the instruction forms under test.
type ISA = isa.ISA

// Form is one instruction form (mnemonic plus typed operands).
type Form = isa.Form

// Measurer measures the steady-state throughput of an experiment in
// cycles per experiment instance. measure.Harness implements it against
// the simulated processors; implement it yourself to target real
// hardware.
type Measurer = exp.Measurer

// BatchMeasurer is an optional Measurer extension for backends that can
// measure a whole batch at once; the pipeline uses it when available.
type BatchMeasurer = exp.BatchMeasurer

// Predictor is the unified throughput-engine interface: it predicts the
// steady-state throughput of experiments under a port mapping, single
// or batched, and is safe for concurrent use. Engines are selected by
// name with EngineByName; the batched PredictAll form fans out over a
// worker pool.
type Predictor = engine.Predictor

// Config configures an inference run.
type Config = core.Config

// Result is the outcome of an inference run.
type Result = core.Result

// EvoOptions configures the evolutionary algorithm inside Config. Set
// Islands > 1 to shard the population into concurrently evolving
// sub-populations with periodic ring migration; with a fixed Seed the
// result is reproducible regardless of Workers, and Islands <= 1
// reproduces the single-population algorithm bit-exactly.
type EvoOptions = evo.Options

// CacheStats reports the fitness engine's cache activity after a run:
// the per-experiment throughput memo and the cross-generation fitness
// cache (see Result.Evo.CacheStats).
type CacheStats = engine.CacheStats

// VirtualProcessor is one of the simulated evaluation machines
// (SKL, ZEN, A72).
type VirtualProcessor = uarch.Processor

// Analysis is a port-pressure report for an experiment under a mapping.
type Analysis = throughput.Analysis

// DefaultConfig returns a medium-scale inference configuration for a
// machine with the given number of ports.
func DefaultConfig(numPorts int) Config { return core.DefaultConfig(numPorts) }

// ErrCanceled and ErrDeadline are the typed interruption errors every
// long-running entry point returns when its context is canceled or its
// deadline expires (match with errors.Is). An interrupted Infer whose
// evolutionary search had a best-so-far mapping returns it alongside
// the error; see core.Infer.
var (
	ErrCanceled = evo.ErrCanceled
	ErrDeadline = evo.ErrDeadline
)

// Interrupted reports whether err is a cancellation or deadline
// interruption (as opposed to a real failure).
func Interrupted(err error) bool { return evo.Interrupted(err) }

// Infer runs the full PMEvo pipeline (experiment generation, throughput
// measurement, congruence filtering, evolutionary optimization, local
// search) for the given ISA against the measurer. Cancellation and
// deadlines on ctx are honored at every stage: an interruption during
// the evolutionary search returns ErrCanceled/ErrDeadline along with a
// Result built from the best mapping found so far (check Interrupted
// and decide whether to keep it); EvoOptions.CheckpointDir/Resume make
// the search crash-safe and resumable.
func Infer(ctx context.Context, a *ISA, m Measurer, cfg Config) (*Result, error) {
	return core.Infer(ctx, a, m, cfg)
}

// Throughput computes the steady-state throughput of an experiment
// under a port mapping with the bottleneck simulation algorithm (paper
// §4.5), in cycles per experiment instance.
func Throughput(m *Mapping, e Experiment) float64 { return throughput.OfExperiment(m, e) }

// EngineNames returns the names of the selectable throughput engines:
// "bottleneck" (the production §4.5 simulation algorithm), "lp" (the
// Definition 3 linear program), "union" and "naive" (ablation
// variants).
func EngineNames() []string { return engine.Names() }

// EngineByName returns the named throughput engine; the empty string
// selects the default (bottleneck) engine.
func EngineByName(name string) (Predictor, error) { return engine.ByName(name) }

// Analyze computes an optimal port allocation for an experiment under a
// mapping: throughput, per-port load, and the bottleneck port set.
func Analyze(m *Mapping, e Experiment) (*Analysis, error) { return throughput.Analyze(m, e) }

// Processors returns the three simulated evaluation machines of the
// paper's Table 1 (SKL, ZEN, A72).
func Processors() []*VirtualProcessor { return uarch.All() }

// Processor returns the simulated machine with the given name
// ("SKL", "ZEN", or "A72").
func Processor(name string) (*VirtualProcessor, error) { return uarch.ByName(name) }

// NewSimMeasurer builds a measurement harness (paper §4.2: register
// allocation, unrolling, steady-state loops, noise, median-of-k) that
// measures experiments on the given simulated processor.
func NewSimMeasurer(proc *VirtualProcessor) (Measurer, error) {
	return measure.NewHarness(proc, measure.DefaultOptions())
}

// SyntheticX86 returns the 310-form x86-64-like instruction table used
// by the SKL and ZEN virtual processors.
func SyntheticX86() *ISA { return isa.SyntheticX86() }

// SyntheticARM returns the 390-form ARMv8-A-like instruction table used
// by the A72 virtual processor.
func SyntheticARM() *ISA { return isa.SyntheticARM() }
