// Command pmevo-infer runs the PMEvo inference pipeline against one of
// the simulated processors and writes the inferred port mapping as JSON.
//
// Usage:
//
//	pmevo-infer -proc SKL -o skl-mapping.json
//	pmevo-infer -proc A72 -population 2000 -generations 80 -forms-per-class 5
//
// The pipeline only observes measured steady-state throughputs from the
// simulated machine — never its hidden ground-truth mapping — exactly as
// the paper's tool only observes wall-clock time on real hardware.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pmevo/internal/eval"
	"pmevo/internal/evo"
	"pmevo/internal/export"
	"pmevo/internal/lifecycle"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

func main() {
	procName := flag.String("proc", "SKL", "processor under test: SKL|ZEN|A72")
	out := flag.String("o", "", "output file for the inferred mapping JSON (default: stdout)")
	llvmOut := flag.String("llvm", "", "also write an LLVM-style scheduling model fragment to this file")
	osacaOut := flag.String("osaca", "", "also write an OSACA-style machine model fragment to this file")
	population := flag.Int("population", 300, "evolutionary algorithm population size")
	generations := flag.Int("generations", 40, "maximum generations")
	islands := flag.Int("islands", 0,
		"island count for the evolutionary algorithm (0: single population; N>1 shards the population into N concurrently evolving islands)")
	migrationInterval := flag.Int("migration-interval", 0,
		"generations between island migrations (0: default; negative: no migration); ignored with -islands <= 1")
	migrationCount := flag.Int("migration-count", 0,
		"emigrants per island per migration (0: default; negative: no migration); ignored with -islands <= 1")
	formsPerClass := flag.Int("forms-per-class", 3, "instruction forms per semantic class (0: all forms)")
	cacheDir := flag.String("cache-dir", "",
		"directory for the persistent kernel-simulation cache; loaded before measurement, spilled on success")
	deadline := flag.Duration("deadline", 0,
		"abort the run after this duration, checkpointing first (0 or negative: no deadline)")
	checkpointDir := flag.String("checkpoint-dir", "",
		"directory for crash-safe evolution checkpoints; a deadline, SIGINT or SIGTERM spills the search state here for -resume")
	checkpointInterval := flag.Int("checkpoint-interval", 0,
		"generations between periodic checkpoints (0: default of 10; negative: only at migration barriers and interruption); ignored without -checkpoint-dir")
	resume := flag.Bool("resume", false,
		"resume the evolutionary search from the checkpoint in -checkpoint-dir (cold-starts with a diagnostic if absent or unusable)")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print the mapping and a port usage table to stderr")
	flag.Parse()

	scale := eval.DefaultScale()
	scale.Population = *population
	scale.MaxGenerations = *generations
	scale.MaxFormsPerClass = *formsPerClass
	scale.Islands = *islands
	scale.MigrationInterval = *migrationInterval
	scale.MigrationCount = *migrationCount
	scale.CheckpointDir = *checkpointDir
	scale.CheckpointInterval = *checkpointInterval
	scale.Resume = *resume
	scale.Log = logf
	scale.Seed = *seed

	if *resume && *checkpointDir == "" {
		fatalf("-resume requires -checkpoint-dir")
	}

	// SIGINT/SIGTERM and -deadline cancel the root context; the pipeline
	// checkpoints at the next generation boundary and returns its best
	// partial result with a typed interruption error.
	ctx, stopSignals := lifecycle.SignalContext(context.Background(), *deadline)
	defer stopSignals()

	// Warm-start the kernel-simulation cache from a previous invocation:
	// measurement dominates inference wall time, and the noiseless
	// steady-state cycles of each kernel are a pure function of the
	// machine and body, so reloading them changes timing but never the
	// inferred mapping (a damaged or missing file just cold-starts). The
	// spill also runs on error exits (fatalf), so a failure after
	// measurement keeps the simulated kernels.
	if *cacheDir != "" {
		measure.WarmStartSimCache(*cacheDir, logf)
		spillOnExit = func() { measure.SpillSimCache(*cacheDir, logf) }
	}

	start := time.Now()
	layout := "single population"
	if *islands > 1 {
		layout = fmt.Sprintf("%d islands", *islands)
	}
	fmt.Fprintf(os.Stderr, "[pmevo-infer] inferring port mapping for %s "+
		"(population %d, max %d generations, %s)\n", *procName, *population, *generations, layout)
	run, err := eval.RunPipeline(ctx, *procName, scale)
	if err != nil {
		if evo.Interrupted(err) {
			// The search already checkpointed (with -checkpoint-dir) and
			// the partial mapping is deliberately NOT written: an
			// interrupted run must never be mistaken for a finished one.
			// Exit code 3 distinguishes interruption from failure (1).
			if *cacheDir != "" {
				measure.SpillSimCache(*cacheDir, logf)
			}
			logf("interrupted: %v", err)
			if *checkpointDir != "" {
				logf("run state checkpointed; rerun with -resume -checkpoint-dir %s to continue", *checkpointDir)
			} else {
				logf("no -checkpoint-dir; progress is lost")
			}
			os.Exit(3)
		}
		fatalf("%v", err)
	}
	res := run.Result

	if *cacheDir != "" {
		measure.SpillSimCache(*cacheDir, logf)
		spillOnExit = nil // spilled; later failures need not repeat it
		st := measure.ProcessCacheStats()
		logf("kernel cache: %d hits (%d disk-warm), %d misses",
			st.SimHits, st.SimWarmHits, st.SimMisses)
	}

	fmt.Fprintf(os.Stderr, "[pmevo-infer] measured %d experiments (simulated benchmarking cost: %.1f h)\n",
		run.Harness.Measurements(), run.Harness.SimulatedBenchmarkingCost()/3600)
	fmt.Fprintf(os.Stderr, "[pmevo-infer] %d forms -> %d congruence classes (%.0f%% congruent)\n",
		run.SubISA.NumForms(), res.Classes.NumClasses(), res.CongruentFraction()*100)
	fmt.Fprintf(os.Stderr, "[pmevo-infer] evolution: %d generations, %d fitness evaluations, Davg = %.3f\n",
		res.Evo.Generations, res.Evo.FitnessEvaluations, res.Evo.BestError)
	if st := res.Evo.CacheStats; st.FitCacheHits+st.FitCacheMisses > 0 {
		logf("cross-generation fitness cache: %d hits, %d misses (%d slots)",
			st.FitCacheHits, st.FitCacheMisses, st.FitCacheEntries)
	}
	fmt.Fprintf(os.Stderr, "[pmevo-infer] mapping uses %d distinct µops; total time %s\n",
		res.NumUops(), time.Since(start).Round(time.Millisecond))

	// Report the prediction error of the inferred mapping on the
	// measured training set, per the fitness definition.
	var worst float64
	var worstExp portmap.Experiment
	for _, m := range res.Set.Measurements {
		// Training-set experiments are in subset instruction space.
		pred := throughput.OfExperiment(res.Mapping, m.Exp)
		rel := abs(pred-m.Throughput) / m.Throughput
		if rel > worst {
			worst = rel
			worstExp = m.Exp
		}
	}
	fmt.Fprintf(os.Stderr, "[pmevo-infer] worst training-set error: %.1f%% on %v\n", worst*100, worstExp)

	if *verbose {
		fmt.Fprintln(os.Stderr, res.Mapping.String())
		fmt.Fprintln(os.Stderr, res.Mapping.PortUsageTable())
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := res.Mapping.WriteJSON(w); err != nil {
		fatalf("writing mapping: %v", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "[pmevo-infer] wrote %s\n", *out)
	}

	// Downstream-tool exports (§6: llvm-mca and OSACA "can benefit from
	// port mappings by PMEvo").
	if *llvmOut != "" {
		writeExport(*llvmOut, func(f *os.File) error {
			return export.LLVMSchedModel(f, res.Mapping, *procName+"Virt")
		})
	}
	if *osacaOut != "" {
		writeExport(*osacaOut, func(f *os.File) error {
			return export.OSACAModel(f, res.Mapping, *procName+"Virt")
		})
	}
}

func writeExport(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("create %s: %v", path, err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "[pmevo-infer] wrote %s\n", path)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// spillOnExit persists the kernel cache when fatalf aborts after
// measurement already ran (deferred saves never run past os.Exit).
var spillOnExit func()

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "[pmevo-infer] "+format+"\n", args...)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pmevo-infer: "+format+"\n", args...)
	if spillOnExit != nil {
		spillOnExit()
	}
	os.Exit(1)
}
