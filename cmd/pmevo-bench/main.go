// Command pmevo-bench regenerates the tables and figures of the paper's
// evaluation (§5) against the simulated processors.
//
// Usage:
//
//	pmevo-bench -exp table1
//	pmevo-bench -exp table3 -scale default
//	pmevo-bench -exp figure8 -csv results/
//	pmevo-bench -exp engines -engine=lp
//	pmevo-bench -exp all -scale quick -json results/
//
// Experiments: table1, table2, table3, table4, figure6, figure7,
// figure8, engines, fitness, measure, machine, evo, all. Tables 2–4 and
// Figure 7 share the same inference pipelines and are computed together
// when any of them is requested. The evo experiment compares the
// island-model evolution loop against the single-population algorithm
// at an equal evaluation budget.
//
// -engine selects the throughput engine for the `engines` consistency
// dump; running it with -engine=lp and -engine=bottleneck must produce
// identical output (up to 1e-9) on the Table 1 configurations.
//
// -cache-dir warm-starts the persistent caches: the kernel-simulation
// cache is loaded before any experiment runs and spilled on exit, and
// the fitness experiment additionally round-trips the engine's
// throughput memo. A second invocation with the same -cache-dir
// reports disk-warm hit rates; results are bit-identical to cold runs
// (the caches hold pure functions of their keys).
//
// -json writes one machine-readable BENCH_<experiment>.json per
// experiment, so the performance trajectory of the repository can be
// tracked across changes. wall_seconds is the marginal cost of the
// experiment's own computation and rendering; computation shared
// between experiments (the inference suite behind tables 2-4 and
// figure 7) is reported once per record in the suite_seconds /
// accuracy_seconds metrics instead, so summing wall_seconds never
// multiple-counts it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pmevo/internal/engine"
	"pmevo/internal/eval"
	"pmevo/internal/lifecycle"
	"pmevo/internal/measure"
)

// benchRecord is the schema of a BENCH_*.json file. WallSeconds is the
// experiment's marginal cost (see the package comment); shared suite
// costs live in Metrics.
type benchRecord struct {
	Experiment  string             `json:"experiment"`
	Scale       string             `json:"scale"`
	Seed        int64              `json:"seed"`
	Engine      string             `json:"engine,omitempty"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: table1|table2|table3|table4|figure6|figure7|figure8|engines|fitness|measure|machine|evo|all")
	scaleFlag := flag.String("scale", "default", "experiment scale: quick|default|full")
	engineFlag := flag.String("engine", "bottleneck",
		"throughput engine for the engines consistency dump: "+strings.Join(engine.Names(), "|"))
	csvDir := flag.String("csv", "", "directory to write CSV result files into (optional)")
	jsonDir := flag.String("json", "", "directory to write machine-readable BENCH_*.json records into (optional)")
	cacheDir := flag.String("cache-dir", "",
		"directory for persistent warm-start caches (kernel-simulation cache, fitness memo); loaded at start, spilled at exit")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var scale eval.Scale
	switch *scaleFlag {
	case "quick":
		scale = eval.QuickScale()
	case "default":
		scale = eval.DefaultScale()
	case "full":
		scale = eval.FullScale()
	default:
		fatalf("unknown scale %q (want quick, default, or full)", *scaleFlag)
	}
	scale.Seed = *seed

	progress := func(msg string) { fmt.Fprintf(os.Stderr, "[pmevo-bench] %s\n", msg) }
	logf := func(format string, args ...any) { progress(fmt.Sprintf(format, args...)) }

	// Warm-start: seed the process-wide kernel-simulation cache from the
	// previous invocation's spill before any driver measures, and spill
	// it again on exit — including error exits (fatalf), so a late
	// driver failure cannot discard simulation work earlier drivers paid
	// for. Load never fails into results — a missing or damaged file
	// just cold-starts (the fitness memo is handled set-locally inside
	// RunFitnessBench).
	ctx := context.Background()
	if *cacheDir != "" {
		measure.WarmStartSimCache(*cacheDir, logf)
		spillOnExit = func() { measure.SpillSimCache(*cacheDir, logf) }
		defer spillOnExit()
		// SIGINT/SIGTERM spill the caches before exiting (mirroring the
		// fatalf path): a benchmark run has no resumable state, but the
		// simulation work it paid for should survive the interruption.
		stopSignals := lifecycle.OnSignalSpill(func() {
			logf("interrupted; spilling caches")
			spillOnExit()
		})
		defer stopSignals()
	}

	// Per-driver attribution of the shared kernel cache (the cache is
	// process-wide, so a later driver's raw hit counters would be
	// inflated by entries earlier drivers paid for): each BENCH record
	// carries the snapshot-and-subtract delta of the process counters
	// since the previous record.
	lastSimStats := measure.ProcessCacheStats()

	// record writes one BENCH_*.json; engineName is empty for
	// experiments the -engine flag does not influence.
	record := func(name, engineName string, start time.Time, metrics map[string]float64) {
		now := measure.ProcessCacheStats()
		if delta := now.Sub(lastSimStats); delta != (measure.CacheStats{}) {
			if metrics == nil {
				metrics = map[string]float64{}
			}
			metrics["driver_sim_hits"] = float64(delta.SimHits)
			metrics["driver_sim_misses"] = float64(delta.SimMisses)
			metrics["driver_sim_warm_hits"] = float64(delta.SimWarmHits)
		}
		lastSimStats = now
		writeBenchJSON(*jsonDir, benchRecord{
			Experiment:  name,
			Scale:       *scaleFlag,
			Seed:        *seed,
			Engine:      engineName,
			WallSeconds: time.Since(start).Seconds(),
			Metrics:     metrics,
		})
	}

	want := map[string]bool{}
	switch *expFlag {
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "table4", "figure6", "figure7", "figure8", "engines", "fitness", "measure", "machine", "evo"} {
			want[e] = true
		}
	case "table1", "table2", "table3", "table4", "figure6", "figure7", "figure8", "figure8a", "figure8b", "ablation", "engines", "fitness", "measure", "machine", "evo":
		want[*expFlag] = true
	default:
		fatalf("unknown experiment %q", *expFlag)
	}

	if want["table1"] {
		start := time.Now()
		fmt.Println(eval.Table1())
		record("table1", "", start, nil)
	}

	if want["engines"] {
		progress(fmt.Sprintf("running engine consistency dump (engine=%s)", *engineFlag))
		start := time.Now()
		res, err := eval.RunEngineCheck(*engineFlag, *seed)
		if err != nil {
			fatalf("engines: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "engines.csv", res.WriteCSV)
		record("engines", *engineFlag, start, map[string]float64{"experiments": float64(len(res.Lines))})
	}

	if want["fitness"] {
		progress("running fitness-evaluation benchmark (cached vs uncached)")
		start := time.Now()
		res, err := eval.RunFitnessBench(ctx, scale, *cacheDir)
		if err != nil {
			fatalf("fitness: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "fitness.csv", res.WriteCSV)
		record("fitness", "", start, map[string]float64{
			"evals_per_sec":          res.Cached.EvalsPerSec,
			"evals_per_sec_uncached": res.Uncached.EvalsPerSec,
			"speedup":                res.Speedup(),
			"evaluations":            float64(res.Cached.Evaluations),
			"memo_hits":              float64(res.Cached.MemoHits),
			"memo_misses":            float64(res.Cached.MemoMisses),
			"memo_warm_hits":         float64(res.Cached.MemoWarmHits),
			"memo_warm_entries":      float64(res.WarmEntries),
			"memo_entries":           float64(res.Cached.MemoEntries),
			"memo_resizes":           float64(res.Cached.MemoResizes),
			"delta_evals":            float64(res.Cached.DeltaEvals),
			"delta_exps_skipped":     float64(res.Cached.DeltaExpsSkipped),
		})
	}

	if want["measure"] {
		progress("running measurement benchmark (fast path vs brute-force simulation)")
		start := time.Now()
		res, err := eval.RunMeasureBench(ctx, scale, *cacheDir)
		if err != nil {
			fatalf("measure: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "measure.csv", res.WriteCSV)
		metrics := map[string]float64{"speedup": res.Speedup()}
		var warmHits float64
		for _, a := range res.Archs {
			metrics["seconds_fast_"+a.Arch] = a.Fast.Seconds
			metrics["seconds_baseline_"+a.Arch] = a.Baseline.Seconds
			metrics["speedup_"+a.Arch] = a.Speedup()
			metrics["meas_per_sec_"+a.Arch] = a.Fast.PerSec
			metrics["sim_hits_"+a.Arch] = float64(a.Fast.SimHits)
			metrics["sim_misses_"+a.Arch] = float64(a.Fast.SimMisses)
			metrics["sim_warm_hits_"+a.Arch] = float64(a.Fast.SimWarmHits)
			metrics["experiments_"+a.Arch] = float64(a.Experiments)
			warmHits += float64(a.Fast.SimWarmHits)
		}
		metrics["sim_warm_hits"] = warmHits
		record("measure", "", start, metrics)
	}

	if want["machine"] {
		progress("running simulator-core benchmark (event-driven vs cycle-by-cycle stepping)")
		start := time.Now()
		res, err := eval.RunMachineBench(scale)
		if err != nil {
			fatalf("machine: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "machine.csv", res.WriteCSV)
		metrics := map[string]float64{
			"speedup_latency_min": res.MinSpeedup("latency"),
			"speedup_divider_min": res.MinSpeedup("divider"),
			"speedup_dense_min":   res.MinSpeedup("dense"),
		}
		for _, a := range res.Archs {
			for _, k := range a.Kernels {
				metrics["speedup_"+k.Kernel+"_"+a.Arch] = k.Speedup()
				metrics["ns_per_iter_"+k.Kernel+"_"+a.Arch] = k.FastNsPerIter
				metrics["cycles_"+k.Kernel+"_"+a.Arch] = float64(k.Cycles)
				metrics["skipped_cycles_"+k.Kernel+"_"+a.Arch] = float64(k.SkippedCycles)
			}
		}
		record("machine", "", start, metrics)
	}

	if want["evo"] {
		progress("running evolution-loop benchmark (island model vs single population)")
		start := time.Now()
		res, err := eval.RunEvoBench(ctx, scale)
		if err != nil {
			fatalf("evo: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "evo.csv", res.WriteCSV)
		record("evo", "", start, map[string]float64{
			"speedup":               res.Speedup(),
			"islands":               float64(res.Islands),
			"seconds_single":        res.Single.Seconds,
			"seconds_islands":       res.Island.Seconds,
			"evaluations_single":    float64(res.Single.Evaluations),
			"evaluations_islands":   float64(res.Island.Evaluations),
			"evals_per_sec_single":  res.Single.EvalsPerSec,
			"evals_per_sec_islands": res.Island.EvalsPerSec,
			"fit_cache_hits":        float64(res.Island.FitCacheHits),
			"fit_cache_hit_rate":    res.Island.FitCacheHitRate,
			"generations_single":    float64(res.Single.Generations),
			"generations_islands":   float64(res.Island.Generations),
			"best_error_single":     res.Single.BestError,
			"best_error_islands":    res.Island.BestError,
		})
	}

	if want["figure6"] {
		progress("running Figure 6 sweep")
		start := time.Now()
		res, err := eval.RunFigure6(ctx, scale)
		if err != nil {
			fatalf("figure 6: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "figure6.csv", res.WriteCSV)
		metrics := map[string]float64{}
		for i, l := range res.Lengths {
			metrics[fmt.Sprintf("mape_uopsinfo_len%d", l)] = res.MAPEUopsInfo[i]
			metrics[fmt.Sprintf("mape_iaca_len%d", l)] = res.MAPEIACA[i]
		}
		record("figure6", "", start, metrics)
	}

	if want["table2"] || want["table3"] || want["table4"] || want["figure7"] {
		suiteStart := time.Now()
		suite, err := eval.NewSuite(ctx, scale, progress)
		if err != nil {
			fatalf("pipeline suite: %v", err)
		}
		suiteSeconds := time.Since(suiteStart).Seconds()
		if want["table2"] {
			start := time.Now()
			rows := suite.Table2()
			fmt.Println(eval.RenderTable2(rows))
			metrics := map[string]float64{"suite_seconds": suiteSeconds}
			for _, r := range rows {
				metrics["inference_seconds_"+r.Arch] = r.InferenceTime.Seconds()
				metrics["congruent_pct_"+r.Arch] = r.CongruentPct
			}
			record("table2", "", start, metrics)
		}
		if want["table3"] || want["table4"] || want["figure7"] {
			accStart := time.Now()
			acc, err := suite.Accuracy(ctx, progress)
			if err != nil {
				fatalf("accuracy: %v", err)
			}
			// The accuracy computation is shared by the three outputs;
			// each record times only its own rendering on top of the
			// shared suite/accuracy metrics.
			metrics := map[string]float64{
				"suite_seconds":    suiteSeconds,
				"accuracy_seconds": time.Since(accStart).Seconds(),
			}
			for _, row := range acc.Rows {
				metrics["mape_"+row.Arch+"_"+row.Tool] = row.MAPE
			}
			if want["table3"] {
				start := time.Now()
				fmt.Println(acc.RenderTable3())
				record("table3", "", start, metrics)
			}
			if want["table4"] {
				start := time.Now()
				fmt.Println(acc.RenderTable4())
				record("table4", "", start, metrics)
			}
			if want["figure7"] {
				start := time.Now()
				fmt.Println(acc.RenderFigure7())
				record("figure7", "", start, metrics)
			}
			writeCSV(*csvDir, "accuracy.csv", acc.WriteCSV)
		}
	}

	if want["ablation"] {
		progress("running experiment-design ablation")
		start := time.Now()
		res, err := eval.RunExperimentDesignAblation(ctx, scale, 3)
		if err != nil {
			fatalf("ablation: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "ablation.csv", res.WriteCSV)
		record("ablation", "", start, nil)
	}

	if want["figure8"] || want["figure8a"] || want["figure8b"] {
		progress("running Figure 8 sweeps")
		start := time.Now()
		res, err := eval.RunFigure8(scale)
		if err != nil {
			fatalf("figure 8: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "figure8.csv", res.WriteCSV)
		metrics := map[string]float64{}
		if n := len(res.PortSweep); n > 0 {
			last := res.PortSweep[n-1]
			metrics["bottleneck_sec_maxports"] = last.BottleneckSec
			metrics["lp_sec_maxports"] = last.LPSec
		}
		record("figure8", "", start, metrics)
	}
}

func writeBenchJSON(dir string, rec benchRecord) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("mkdir %s: %v", dir, err)
	}
	path := filepath.Join(dir, "BENCH_"+rec.Experiment+".json")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "[pmevo-bench] wrote %s\n", path)
}

func writeCSV(dir, name string, write func(w io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("mkdir %s: %v", dir, err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatalf("create %s: %v", path, err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "[pmevo-bench] wrote %s\n", path)
}

// spillOnExit persists the kernel cache on error exits too (deferred
// saves never run past os.Exit); the cached values are pure, so a spill
// taken mid-failure is as valid as one taken at success.
var spillOnExit func()

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pmevo-bench: "+format+"\n", args...)
	if spillOnExit != nil {
		spillOnExit()
	}
	os.Exit(1)
}
