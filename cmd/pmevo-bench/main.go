// Command pmevo-bench regenerates the tables and figures of the paper's
// evaluation (§5) against the simulated processors.
//
// Usage:
//
//	pmevo-bench -exp table1
//	pmevo-bench -exp table3 -scale default
//	pmevo-bench -exp figure8 -csv results/
//	pmevo-bench -exp all -scale quick
//
// Experiments: table1, table2, table3, table4, figure6, figure7,
// figure8, all. Tables 2–4 and Figure 7 share the same inference
// pipelines and are computed together when any of them is requested.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pmevo/internal/eval"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: table1|table2|table3|table4|figure6|figure7|figure8|all")
	scaleFlag := flag.String("scale", "default", "experiment scale: quick|default|full")
	csvDir := flag.String("csv", "", "directory to write CSV result files into (optional)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var scale eval.Scale
	switch *scaleFlag {
	case "quick":
		scale = eval.QuickScale()
	case "default":
		scale = eval.DefaultScale()
	case "full":
		scale = eval.FullScale()
	default:
		fatalf("unknown scale %q (want quick, default, or full)", *scaleFlag)
	}
	scale.Seed = *seed

	progress := func(msg string) { fmt.Fprintf(os.Stderr, "[pmevo-bench] %s\n", msg) }

	want := map[string]bool{}
	switch *expFlag {
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "table4", "figure6", "figure7", "figure8"} {
			want[e] = true
		}
	case "table1", "table2", "table3", "table4", "figure6", "figure7", "figure8", "figure8a", "figure8b", "ablation":
		want[*expFlag] = true
	default:
		fatalf("unknown experiment %q", *expFlag)
	}

	if want["table1"] {
		fmt.Println(eval.Table1())
	}

	if want["figure6"] {
		progress("running Figure 6 sweep")
		res, err := eval.RunFigure6(scale)
		if err != nil {
			fatalf("figure 6: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "figure6.csv", res.WriteCSV)
	}

	if want["table2"] || want["table3"] || want["table4"] || want["figure7"] {
		suite, err := eval.NewSuite(scale, progress)
		if err != nil {
			fatalf("pipeline suite: %v", err)
		}
		if want["table2"] {
			fmt.Println(eval.RenderTable2(suite.Table2()))
		}
		if want["table3"] || want["table4"] || want["figure7"] {
			acc, err := suite.Accuracy(progress)
			if err != nil {
				fatalf("accuracy: %v", err)
			}
			if want["table3"] {
				fmt.Println(acc.RenderTable3())
			}
			if want["table4"] {
				fmt.Println(acc.RenderTable4())
			}
			if want["figure7"] {
				fmt.Println(acc.RenderFigure7())
			}
			writeCSV(*csvDir, "accuracy.csv", acc.WriteCSV)
		}
	}

	if want["ablation"] {
		progress("running experiment-design ablation")
		res, err := eval.RunExperimentDesignAblation(scale, 3)
		if err != nil {
			fatalf("ablation: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "ablation.csv", res.WriteCSV)
	}

	if want["figure8"] || want["figure8a"] || want["figure8b"] {
		progress("running Figure 8 sweeps")
		res, err := eval.RunFigure8(scale)
		if err != nil {
			fatalf("figure 8: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV(*csvDir, "figure8.csv", res.WriteCSV)
	}
}

func writeCSV(dir, name string, write func(w io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("mkdir %s: %v", dir, err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatalf("create %s: %v", path, err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "[pmevo-bench] wrote %s\n", path)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pmevo-bench: "+format+"\n", args...)
	os.Exit(1)
}
