// Command pmevo-vet runs pmevo's contract-enforcing static-analysis
// suite (internal/analysis) over the module: the syntactic analyzers —
// determinism (detrand), map-iteration order (mapiter), context flow
// (ctxflow), fingerprint mutation seams (fpguard), cache-key discipline
// (cachekey) — and the flow-sensitive concurrency-contract analyzers on
// the CFG/dataflow core — scratch escape (scratchescape), atomic access
// hygiene (atomichygiene), serial handles (serialhandle), goroutine
// joins (goroutinejoin), cache-load error flow (errflow) — plus hygiene
// checks on //pmevo:allow suppressions.
//
// Usage:
//
//	pmevo-vet [flags] [patterns]
//
// Patterns select which packages are loaded and analyzed: "./..."
// (default) covers the module; "./internal/evo" restricts to one
// directory; a trailing "/..." matches a subtree. A restrictive pattern
// loads only the matching packages plus their module-internal imports —
// fast enough for pre-commit use — and whole-module analyzers
// (cachekey's cross-package absence checks) stand down on such partial
// loads rather than report on packages they cannot see. Findings in
// packages pulled in only as dependencies are filtered from the report.
//
// Exit status: 0 when no unsuppressed finding is reported, 1 when at
// least one is, 2 on load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmevo/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and suppressions as JSON (for CI artifacts)")
	listAllows := flag.Bool("list-allows", false, "audit mode: dump every pmevo:allow suppression with its location and reason, then exit")
	dir := flag.String("C", ".", "directory inside the module to analyze")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := analysis.LoadPatterns(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmevo-vet: %v\n", err)
		os.Exit(2)
	}
	findings, allows, err := analysis.Run(mod, analysis.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmevo-vet: %v\n", err)
		os.Exit(2)
	}
	findings = filterFindings(findings, patterns)

	if *listAllows {
		if *jsonOut {
			emitJSON(mod.Path, nil, allows)
			return
		}
		for _, a := range allows {
			fmt.Println(a)
		}
		fmt.Fprintf(os.Stderr, "pmevo-vet: %d suppression(s)\n", len(allows))
		return
	}

	unsuppressed := analysis.Unsuppressed(findings)
	if *jsonOut {
		emitJSON(mod.Path, findings, allows)
	} else {
		for _, f := range unsuppressed {
			fmt.Println(f)
		}
	}
	if len(unsuppressed) > 0 {
		fmt.Fprintf(os.Stderr, "pmevo-vet: %d finding(s)\n", len(unsuppressed))
		os.Exit(1)
	}
}

// filterFindings keeps findings under the directories the patterns
// name. Patterns mirror the go tool's: "./..." everything, "./dir" one
// directory, "./dir/..." a subtree.
func filterFindings(findings []analysis.Finding, patterns []string) []analysis.Finding {
	matchAll := false
	var exact, subtree []string
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			matchAll = true
			continue
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = append(subtree, rest)
			continue
		}
		exact = append(exact, strings.TrimSuffix(pat, "/"))
	}
	if matchAll {
		return findings
	}
	var out []analysis.Finding
	for _, f := range findings {
		dir := "."
		if i := strings.LastIndexByte(f.File, '/'); i >= 0 {
			dir = f.File[:i]
		}
		keep := false
		for _, d := range exact {
			if dir == d {
				keep = true
			}
		}
		for _, d := range subtree {
			if dir == d || strings.HasPrefix(dir, d+"/") {
				keep = true
			}
		}
		if keep {
			out = append(out, f)
		}
	}
	return out
}

func emitJSON(modPath string, findings []analysis.Finding, allows []analysis.Allow) {
	type payload struct {
		Module       string             `json:"module"`
		Findings     []analysis.Finding `json:"findings"`
		Unsuppressed int                `json:"unsuppressed"`
		Allows       []analysis.Allow   `json:"allows"`
	}
	if findings == nil {
		findings = []analysis.Finding{}
	}
	if allows == nil {
		allows = []analysis.Allow{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload{
		Module:       modPath,
		Findings:     findings,
		Unsuppressed: len(analysis.Unsuppressed(findings)),
		Allows:       allows,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "pmevo-vet: %v\n", err)
		os.Exit(2)
	}
}
