// Command pmevo-sim predicts the throughput of an instruction mix under
// a port mapping and reports the port pressure, in the style of
// llvm-mca's resource-pressure view (the §6 use case for inferred
// mappings).
//
// Usage:
//
//	pmevo-sim -proc SKL add_r64_r64:2 imul_r64_r64:1
//	pmevo-sim -mapping skl-mapping.json add_r64_r64:1 shl_r64_i8:3
//	pmevo-sim -proc SKL -list | grep mul
//
// Each argument is an instruction form name with an optional ":count"
// suffix. With -proc, the processor's documented ground-truth mapping is
// used; with -mapping, a JSON mapping produced by pmevo-infer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmevo/internal/engine"
	"pmevo/internal/espec"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

func main() {
	procName := flag.String("proc", "SKL", "processor whose ground-truth mapping to use: SKL|ZEN|A72")
	mappingFile := flag.String("mapping", "", "JSON port mapping file (overrides -proc's ground truth)")
	engineName := flag.String("engine", "bottleneck", "throughput engine: "+strings.Join(engine.Names(), "|"))
	list := flag.Bool("list", false, "list the available instruction form names and exit")
	flag.Parse()

	eng, err := engine.ByName(*engineName)
	if err != nil {
		fatalf("%v", err)
	}

	proc, err := uarch.ByName(*procName)
	if err != nil {
		fatalf("%v", err)
	}

	if *list {
		for _, f := range proc.ISA.Forms() {
			fmt.Println(f.Name())
		}
		return
	}

	mapping := proc.GroundTruth
	if *mappingFile != "" {
		f, err := os.Open(*mappingFile)
		if err != nil {
			fatalf("open mapping: %v", err)
		}
		mapping, err = portmap.ReadJSON(f)
		f.Close()
		if err != nil {
			fatalf("parse mapping: %v", err)
		}
	}

	// Resolve instruction names through the mapping's name table when
	// available (an inferred mapping may cover a form subset), falling
	// back to the processor ISA.
	names := mapping.InstNames
	if names == nil {
		names = make([]string, proc.ISA.NumForms())
		for _, f := range proc.ISA.Forms() {
			names[f.ID] = f.Name()
		}
	}
	resolver := espec.NewResolver(names)

	if flag.NArg() == 0 {
		fatalf("no instructions given; try: pmevo-sim -proc SKL add_r64_r64:2 imul_r64_r64\n" +
			"use -list to see available instruction form names")
	}
	e, err := resolver.Parse(flag.Args())
	if err != nil {
		fatalf("%v (use -list to see available forms)", err)
	}

	tp, err := eng.Predict(mapping, e)
	if err != nil {
		fatalf("%v", err)
	}
	analysis, err := throughput.Analyze(mapping, e)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("experiment: %s\n", resolver.Format(e))
	fmt.Printf("throughput (%s engine): %.4g cycles per experiment instance\n\n", eng.Name(), tp)
	fmt.Print(analysis.Render(mapping.PortNames))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pmevo-sim: "+format+"\n", args...)
	os.Exit(1)
}
