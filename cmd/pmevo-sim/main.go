// Command pmevo-sim predicts the throughput of an instruction mix under
// a port mapping and reports the port pressure, in the style of
// llvm-mca's resource-pressure view (the §6 use case for inferred
// mappings).
//
// Usage:
//
//	pmevo-sim -proc SKL add_r64_r64:2 imul_r64_r64:1
//	pmevo-sim -mapping skl-mapping.json add_r64_r64:1 shl_r64_i8:3
//	pmevo-sim -proc SKL -measured -cache-dir ~/.pmevo-cache imul_r64_r64
//	pmevo-sim -proc SKL -list | grep mul
//
// Each argument is an instruction form name with an optional ":count"
// suffix. With -proc, the processor's documented ground-truth mapping is
// used; with -mapping, a JSON mapping produced by pmevo-infer.
//
// -measured additionally benchmarks the experiment on the processor's
// cycle-level virtual machine (the §4.2 harness) next to the model
// prediction; -cache-dir persists the harness's kernel-simulation cache
// across invocations so repeated queries warm-start.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmevo/internal/engine"
	"pmevo/internal/espec"
	"pmevo/internal/lifecycle"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

func main() {
	procName := flag.String("proc", "SKL", "processor whose ground-truth mapping to use: SKL|ZEN|A72")
	mappingFile := flag.String("mapping", "", "JSON port mapping file (overrides -proc's ground truth)")
	engineName := flag.String("engine", "bottleneck", "throughput engine: "+strings.Join(engine.Names(), "|"))
	measured := flag.Bool("measured", false,
		"also measure the experiment on the processor's virtual machine (§4.2 harness)")
	cacheDir := flag.String("cache-dir", "",
		"directory for the persistent kernel-simulation cache used by -measured")
	list := flag.Bool("list", false, "list the available instruction form names and exit")
	flag.Parse()

	eng, err := engine.ByName(*engineName)
	if err != nil {
		fatalf("%v", err)
	}

	proc, err := uarch.ByName(*procName)
	if err != nil {
		fatalf("%v", err)
	}

	if *list {
		for _, f := range proc.ISA.Forms() {
			fmt.Println(f.Name())
		}
		return
	}

	mapping := proc.GroundTruth
	if *mappingFile != "" {
		f, err := os.Open(*mappingFile)
		if err != nil {
			fatalf("open mapping: %v", err)
		}
		mapping, err = portmap.ReadJSON(f)
		f.Close()
		if err != nil {
			fatalf("parse mapping: %v", err)
		}
	}

	// Resolve instruction names through the mapping's name table when
	// available (an inferred mapping may cover a form subset), falling
	// back to the processor ISA.
	names := mapping.InstNames
	if names == nil {
		names = make([]string, proc.ISA.NumForms())
		for _, f := range proc.ISA.Forms() {
			names[f.ID] = f.Name()
		}
	}
	resolver := espec.NewResolver(names)

	if flag.NArg() == 0 {
		fatalf("no instructions given; try: pmevo-sim -proc SKL add_r64_r64:2 imul_r64_r64\n" +
			"use -list to see available instruction form names")
	}
	e, err := resolver.Parse(flag.Args())
	if err != nil {
		fatalf("%v (use -list to see available forms)", err)
	}

	tp, err := eng.Predict(mapping, e)
	if err != nil {
		fatalf("%v", err)
	}
	analysis, err := throughput.Analyze(mapping, e)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("experiment: %s\n", resolver.Format(e))
	fmt.Printf("throughput (%s engine): %.4g cycles per experiment instance\n", eng.Name(), tp)

	if *measured {
		// Benchmark on the virtual machine next to the model prediction
		// (the experiment names are translated back into the processor's
		// full form space; an inferred mapping may cover a subset).
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[pmevo-sim] "+format+"\n", args...)
		}
		if *cacheDir != "" {
			measure.WarmStartSimCache(*cacheDir, logf)
			// SIGINT/SIGTERM between warm-start and the normal spill
			// persists whatever simulations completed (mirroring
			// pmevo-bench's spill-on-signal path).
			stopSignals := lifecycle.OnSignalSpill(func() {
				logf("interrupted; spilling kernel cache")
				measure.SpillSimCache(*cacheDir, logf)
			})
			defer stopSignals()
		}
		full := make(portmap.Experiment, len(e))
		for i, t := range e {
			f, ok := proc.ISA.FormByName(names[t.Inst])
			if !ok {
				fatalf("form %q not in processor %s", names[t.Inst], *procName)
			}
			full[i] = portmap.InstCount{Inst: f.ID, Count: t.Count}
		}
		h, err := measure.NewHarness(proc, measure.DefaultOptions())
		if err != nil {
			fatalf("%v", err)
		}
		mtp, err := h.Measure(full)
		if err != nil {
			fatalf("measure: %v", err)
		}
		fmt.Printf("throughput (virtual %s, median of %d noisy runs): %.4g cycles per experiment instance\n",
			*procName, measure.DefaultOptions().Repetitions, mtp)
		// Show how the simulator earned the number: one diagnostic run
		// of the measured loop reports the fast paths' engagement (the
		// detected steady-state period and the dead cycles fast-forwarded
		// past). Both are diagnostic metadata — results are bit-identical
		// with either fast path disabled.
		opts := measure.DefaultOptions()
		body, _, err := h.BuildLoop(full)
		if err != nil {
			fatalf("%v", err)
		}
		mach, err := proc.Machine()
		if err != nil {
			fatalf("%v", err)
		}
		diag, err := mach.Run(body, opts.WarmupIters+opts.MeasureIters)
		if err != nil {
			fatalf("simulate: %v", err)
		}
		fmt.Printf("simulator: %d cycles, detected period %d cycles / %d iterations, %d dead cycles skipped\n",
			diag.Cycles, diag.DetectedPeriod, diag.DetectedPeriodIters, diag.SkippedCycles)
		if *cacheDir != "" {
			measure.SpillSimCache(*cacheDir, logf)
		}
	}

	fmt.Printf("\n")
	fmt.Print(analysis.Render(mapping.PortNames))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pmevo-sim: "+format+"\n", args...)
	os.Exit(1)
}
